"""The shared execution engine: one executor for every IOPlan.

The per-architecture planners (:mod:`repro.raid.planners`) decide the
*structure* of a request; this engine owns everything that runs —
simulator processes, tracing spans, tolerant-write semantics, lock
acquisition with guaranteed release, degraded fallback, and the RAID-x
write-behind mirror state.  Every storage architecture executes through
the same code paths, so cross-cutting features (batching, caching,
tracing) are implemented once.

Timing fidelity contract: the engine schedules *exactly* the simulator
events, in exactly the order, that the per-system protocol bodies it
replaced did.  The event heap breaks ties by creation sequence, so the
number and order of ``env.process`` spawns is behaviour — which is why
plan ops are filtered against the live failed-disk set here, at each
spawn point, rather than at plan time (a disk can fail while a request
waits on a lock or an earlier wave).  The golden equivalence suite
(``tests/cluster/test_engine_equivalence.py``) pins this contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DataLossError, DiskFailedError
from repro.hardware.node import FFSpanSynth
from repro.io.context import PieceContext
from repro.obs import runtime as _obs
from repro.obs.trace import LOCK_WAIT, MIRROR_FLUSH, REQUEST
from repro.raid.layout import Placement
from repro.raid.plan import (
    ImageExtent,
    IOPlan,
    OrthogonalWrite,
    ParallelWrite,
    ParityWrite,
    Piece,
    PieceOp,
    ReadContext,
    ReconstructRead,
    SerialWrite,
    StripeWrite,
    WriteContext,
)
from repro.sim.events import Event
from repro.sim.sync import Mutex


class MirrorState:
    """Runtime state of RAID-x write-behind mirroring.

    Owned by the engine (it is execution state, not geometry): the
    outstanding background flushes, the stale-image guard, the
    absorption buffer, and the deferral-cost accounting.
    """

    def __init__(self) -> None:
        #: Outstanding background image-flush events.
        self.pending_flushes: List[Event] = []
        #: Mirror groups with an un-flushed image (stale-image guard).
        self.dirty_groups: Set[int] = set()
        #: Extents queued but not yet issued to disk — rewrites of the
        #: same extent are absorbed in the write-behind buffer.
        self.queued_extents: Set[Tuple[int, int, int]] = set()
        self.background_bytes = 0.0
        self.coalesced_extents = 0
        self.absorbed_rewrites = 0
        #: Vulnerability windows: seconds each image extent spent
        #: un-flushed after its data committed — the price of deferral
        #: (a data-disk failure inside the window costs redundancy,
        #: though never the data itself).
        self.vulnerability_windows: List[float] = []


#: Distinguishes "never resolved" from a memoized fall-back decision.
_FF_MISS = object()

#: Bound on the fast-path plan memo.  Million-request open-loop sweeps
#: with unique offsets would otherwise grow ``_ff_plans`` without limit;
#: at the cap the oldest entry is dropped (dict preserves insertion
#: order, so FIFO is one ``next(iter(...))``) — an eviction only costs a
#: re-plan if that exact request shape recurs.
_FF_PLAN_CAP = 4096


class _PhaseRelease:
    """Completion hook decrementing a client's in-flight phase count."""

    __slots__ = ("counts", "client")

    def __init__(self, counts: List[int], client: int) -> None:
        self.counts = counts
        self.client = client

    def __call__(self, _event: Event) -> None:
        self.counts[self.client] -= 1


class _FastFinish:
    """Completion hook for a fast-forwarded request: the byte accounting
    that :meth:`ExecutionEngine.run`'s epilogue performs at the same
    simulated instant on the phase path."""

    __slots__ = ("system", "op", "nbytes")

    def __init__(self, system, op: str, nbytes: int) -> None:
        self.system = system
        self.op = op
        self.nbytes = nbytes

    def __call__(self, event: Event) -> None:
        if event._ok:
            if self.op == "read":
                self.system.bytes_read += self.nbytes
            else:
                self.system.bytes_written += self.nbytes


class ExecutionEngine:
    """Executes any :class:`~repro.raid.plan.IOPlan` through the CDDs."""

    def __init__(self, system) -> None:
        self.system = system
        self.cluster = system.cluster
        self.env = system.env
        self.planner = system.planner
        #: Per-stripe mutexes serializing parity read-modify-write.
        self._stripe_locks: Dict[int, Mutex] = {}
        self.mirror = MirrorState()
        #: The buffer-cache admission/lookup stage
        #: (:class:`~repro.cluster.cache_stage.CacheStage`), attached by
        #: the system when a cache is configured.  ``None`` — the
        #: default — leaves every path below byte-identical to the
        #: cache-less engine.
        self.cache = None
        #: Requests served by :meth:`try_fast_submit` (fast-forward hits).
        self.fast_submits = 0
        #: Fast-forward split with a cache attached: closed-form cache
        #: hits vs closed-form clean-miss fills (both count in
        #: ``fast_submits`` too).
        self.fast_hits = 0
        self.fast_fills = 0
        #: Requests that took the event-driven phase path instead.
        self.phase_submits = 0
        #: FIFO evictions from the bounded ``_ff_plans`` memo.
        self.ff_plan_evictions = 0
        #: Per-client count of event-driven requests still in flight.
        #: A phase request claims its client's CPU from a deferred
        #: Initialize event (and again at completion resumes), so its
        #: claims can be pending-but-invisible to the link ``outstanding``
        #: counters at the current instant; the fast path must not jump
        #: ahead of them (DESIGN §6.14).
        n = len(self.cluster.nodes)
        self.phase_inflight: List[int] = [0] * n
        self._phase_release = [
            _PhaseRelease(self.phase_inflight, c) for c in range(n)
        ]
        #: Memoized fast-path plan resolutions.  With no failed disks
        #: and no dirty mirror groups (the only states the fast path
        #: accepts, and the cache's read/write gate) the planner's
        #: answer for a (client, op, offset, nbytes) request is a pure
        #: function of the key, so the resolved single-piece op — or the
        #: decision to fall back — can be replayed without re-planning.
        self._ff_plans: Dict[
            Tuple[int, str, int, int],
            Optional[Tuple[int, str, int, int, int]],
        ] = {}

    # -- plumbing ----------------------------------------------------------
    @property
    def failed_disks(self) -> Set[int]:
        return self.system.failed_disks

    def cdd(self, node: int):
        return self.cluster.cdds[node]

    def _issue_gen(self, client: int, pop: PieceOp, trace):
        """The process generator behind one plan op.

        Tolerant ops absorb a mid-flight disk failure by marking the
        disk failed (redundancy keeps the block recoverable); plain ops
        propagate :class:`~repro.errors.DiskFailedError`.  Batched
        executors collect these for ``Environment.process_many`` (one
        heapified Initialize batch per fan-out); :meth:`_issue` spawns a
        single one.
        """
        ctx = PieceContext(trace=trace, step=pop.kind)
        if pop.tolerant:

            def body():
                try:
                    yield from self.cdd(client).block_io(
                        pop.op, pop.disk, pop.offset, pop.nbytes,
                        priority=pop.priority, ctx=ctx,
                    )
                except DiskFailedError as e:
                    self.failed_disks.add(e.disk_id)

            return body()
        return self.cdd(client).block_io(
            pop.op, pop.disk, pop.offset, pop.nbytes,
            priority=pop.priority, trace=None, ctx=ctx,
        )

    def _issue(self, client: int, pop: PieceOp, trace) -> Event:
        """Spawn one plan op as a process; returns its completion event."""
        return self.env.process(self._issue_gen(client, pop, trace))

    # -- submit-time fast path ---------------------------------------------
    def try_fast_submit(
        self, client: int, op: str, offset: int, nbytes: int
    ) -> Optional[Event]:
        """Closed-form execution of a conflict-free single-piece request.

        The submit-time twin of :meth:`run`: when the request is
        lock-free, single-piece, served by a local disk under the
        static read policy, and the owner node's whole pipeline is
        idle, the node fast-forward (:meth:`Node.try_fast_forward`)
        prices the hop chain analytically; this method adds the engine's
        own bookkeeping (op counters at submit, byte accounting at
        completion) at the same points the phase path would.  Returns
        the completion event, or ``None`` to fall back — a fallback
        charges and counts nothing.

        Tracing no longer forces a fallback: an armed
        :class:`~repro.hardware.node.FFSpanSynth` replays the phase
        path's trace-id allocation and span records at the same event
        pops, so the span stream stays byte-identical (DESIGN §6.15).
        """
        system = self.system
        if self.failed_disks:
            return None
        if self.phase_inflight[client]:
            # An event-driven request from this client is in flight; its
            # next claim on this node may still sit in the queue where
            # the idle-pipeline predicate cannot see it.
            return None
        if self.cache is not None:
            # With a cache attached the request's fate is decided above
            # the planner: the stage prices resident hits and clean miss
            # fills in closed form (calling back into _ff_resolved for
            # the fill's plan) and vetoes everything else (DESIGN §6.18).
            return self.cache.try_fast_submit(client, op, offset, nbytes)
        if op == "write" and system.locking:
            return None
        bs = system.block_size
        if offset % bs + nbytes > bs:
            return None  # spans blocks: never a single-piece plan
        resolved = self._ff_resolved(client, op, offset, nbytes)
        if resolved is None:
            return None
        disk, io_op, io_offset, io_nbytes, priority = resolved
        tracer = _obs.TRACER
        synth = (
            FFSpanSynth(
                self.env, tracer, client, op, offset, nbytes, system.name
            )
            if tracer.enabled
            else None
        )
        done = self.cluster.nodes[client].try_fast_forward(
            disk, io_op, io_offset, io_nbytes, priority=priority,
            synth=synth,
        )
        if done is None:
            return None
        cdd = self.cdd(client)
        cdd.issued_ops += 1
        cdd.transport.stats.local_block_ops += 1
        self.fast_submits += 1
        done.callbacks.append(_FastFinish(system, op, nbytes))
        return done

    def _ff_resolved(
        self, client: int, op: str, offset: int, nbytes: int
    ) -> Optional[Tuple[int, str, int, int, int]]:
        """Memoized :meth:`_resolve_fast` (bounded, mirror-state aware).

        With stale mirror images outstanding the read candidates are not
        a pure function of the key, so the memo is bypassed — resolved
        afresh, stored nowhere — and the clean-state cache stays valid.
        The memo itself is FIFO-bounded at ``_FF_PLAN_CAP`` entries so
        unique-offset open-loop sweeps cannot grow it without limit.
        Cache-attached engines share this resolver for clean miss fills:
        plan resolution sits below the buffer cache, so no cache-epoch
        key is needed (the stage's own legality predicate re-checks the
        live cache state on every submit).
        """
        if self.mirror.dirty_groups:
            return self._resolve_fast(client, op, offset, nbytes)
        key = (client, op, offset, nbytes)
        resolved = self._ff_plans.get(key, _FF_MISS)
        if resolved is _FF_MISS:
            resolved = self._resolve_fast(client, op, offset, nbytes)
            if len(self._ff_plans) >= _FF_PLAN_CAP:
                del self._ff_plans[next(iter(self._ff_plans))]
                self.ff_plan_evictions += 1
            self._ff_plans[key] = resolved
        return resolved

    def _resolve_fast(
        self, client: int, op: str, offset: int, nbytes: int
    ) -> Optional[Tuple[int, str, int, int, int]]:
        """Plan one request down to a single local piece op, or ``None``.

        Pure given the live failed/dirty state (the caller gates the
        memo on both being empty): plans the request, insists on the
        single-piece shapes the fast path can price, resolves the read
        source under the static policy, and rejects remote owners.
        """
        system = self.system
        plan = self.planner.plan(op, offset, nbytes, self.failed_disks)
        if op == "read":
            if system.read_policy != "static":
                return None
            reads = plan.action.reads
            if len(reads) != 1:
                return None
            piece = reads[0].piece
            src = self.read_source(client, piece)
            if src is None:
                return None
            disk = src.disk
            io_op = "read"
            io_offset = src.offset + piece.intra
            io_nbytes = piece.nbytes
            priority = 0
        else:
            action = plan.action
            if (
                not isinstance(action, ParallelWrite)
                or action.check_survivors
                or len(action.pieces) != 1
            ):
                return None
            ops = action.pieces[0].ops
            if len(ops) != 1:
                return None
            pop = ops[0]
            if pop.tolerant:
                return None
            disk = pop.disk
            io_op = pop.op
            io_offset = pop.offset
            io_nbytes = pop.nbytes
            priority = pop.priority
        if disk % len(self.cluster.nodes) != client:
            return None  # CDD.owner_of: remote op
        return (disk, io_op, io_offset, io_nbytes, priority)

    # -- top-level request path --------------------------------------------
    def run(self, client: int, op: str, offset: int, nbytes: int):
        """Process generator: plan and execute one logical request.

        With a cache attached, the request enters the admission/lookup
        stage instead; the stage calls back into
        :meth:`execute_read`/:meth:`execute_write` for fills and
        destages.  Without one, this body is the pre-cache engine,
        event for event.
        """
        if self.cache is not None:
            yield from self.cache.run_request(client, op, offset, nbytes)
            return
        plan = self.planner.plan(op, offset, nbytes, self.failed_disks)
        if not plan.pieces:
            return
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        handle = None
        if self.system.locking and op == "write":
            handle = yield from self.cdd(client).acquire_write_locks(
                list(plan.lock_blocks), trace=trace
            )
        try:
            if op == "read":
                yield from self._run_read(client, plan, trace)
                self.system.bytes_read += nbytes
            else:
                yield from self._run_write(client, plan, trace)
                self.system.bytes_written += nbytes
        finally:
            if handle is not None:
                yield from self.cdd(client).release_write_locks(
                    handle, trace=trace
                )
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", t0, self.env.now,
                    trace=trace, op=op, offset=offset, nbytes=nbytes,
                    arch=self.system.name,
                )

    # -- cache-stage back-ends ---------------------------------------------
    def execute_read(self, client: int, offset: int, nbytes: int, trace):
        """Process generator: plan + run one read below the cache stage
        (miss service and RMW fills) — no REQUEST span, no byte
        accounting; the stage owns both."""
        plan = self.planner.plan("read", offset, nbytes, self.failed_disks)
        if plan.pieces:
            yield from self._run_read(client, plan, trace)

    def execute_write(
        self, client: int, offset: int, nbytes: int, trace,
        wctx: Optional[WriteContext] = None,
    ):
        """Process generator: plan + run one write below the cache stage
        (write-through commits and destages).  ``wctx`` carries the
        RMW-absorbed block set to the planner; lock acquisition and
        guaranteed release match :meth:`run`'s write path."""
        plan = self.planner.plan(
            "write", offset, nbytes, self.failed_disks, wctx=wctx
        )
        if not plan.pieces:
            return
        handle = None
        if self.system.locking:
            handle = yield from self.cdd(client).acquire_write_locks(
                list(plan.lock_blocks), trace=trace
            )
        try:
            yield from self._run_write(client, plan, trace)
        finally:
            if handle is not None:
                yield from self.cdd(client).release_write_locks(
                    handle, trace=trace
                )

    # -- reads -------------------------------------------------------------
    def _balance(self, sources: List[Placement]) -> Optional[Placement]:
        """Apply the read policy to an ordered list of surviving copies."""
        if not sources:
            return None
        if self.system.read_policy == "static" or len(sources) == 1:
            return sources[0]
        preferred = sources[0]
        depth0 = self.cluster.disk(preferred.disk).queue_depth
        best, best_depth = preferred, depth0
        for alt in sources[1:]:
            d = self.cluster.disk(alt.disk).queue_depth
            if d < best_depth:
                best, best_depth = alt, d
        if best is preferred:
            return preferred
        margin = self.system.read_balance_margin
        return best if depth0 - best_depth >= margin else preferred

    def read_source(self, client: int, piece: Piece) -> Optional[Placement]:
        """Pick the placement to serve a read piece (None = reconstruct).

        The planner ranks the surviving copies (pure, given the live
        failed set and mirror-staleness state); the engine applies the
        queue-depth read policy when the ranking allows it.
        """
        ctx = ReadContext(client=client, dirty_groups=self.mirror.dirty_groups)
        candidates, may_balance = self.planner.read_candidates(
            piece, self.failed_disks, ctx
        )
        if may_balance:
            return self._balance(list(candidates))
        return candidates[0] if candidates else None

    def _run_read(self, client: int, plan: IOPlan, trace):
        # Bulk spawn: one heapified Initialize batch for the fan-out
        # instead of a heap sift per piece (timing-identical, see
        # Environment.process_many).
        events = self.env.process_many(
            self._read_piece(client, rp.piece, trace)
            for rp in plan.action.reads
        )
        if events:
            yield self.env.all_of(events)

    def _read_piece(self, client: int, piece: Piece, trace=None):
        """Read one piece, retrying on mid-flight disk failures.

        A request queued on a disk that fails before service returns EIO;
        real drivers then mark the disk bad and re-issue against a
        surviving copy — which is what the retry loop does (the failed
        set grows on every iteration, so it terminates)."""
        ctx = PieceContext(
            trace=trace, step="data",
            retry_budget=self.planner.layout.n_disks,
        )
        while True:
            src = self.read_source(client, piece)
            if src is None:
                rplan = self.planner.plan_reconstruct(
                    piece, self.failed_disks
                )
                yield from self._exec_reconstruct(client, rplan, trace)
                return
            try:
                yield from self.cdd(client).block_io(
                    "read", src.disk, src.offset + piece.intra,
                    piece.nbytes, ctx=ctx,
                )
                return
            except DiskFailedError as e:
                self.failed_disks.add(e.disk_id)
                ctx.attempt += 1
                if ctx.exhausted:
                    raise

    def _exec_reconstruct(
        self, client: int, rplan: ReconstructRead, trace
    ):
        """Rebuild a lost block from its surviving peers + parity."""
        reads = self.env.process_many(
            self._issue_gen(client, r, trace) for r in rplan.reads
        )
        yield self.env.all_of(reads)
        yield self.cluster.nodes[client].cpu.xor(rplan.xor_bytes)

    # -- writes ------------------------------------------------------------
    def _run_write(self, client: int, plan: IOPlan, trace):
        action = plan.action
        if isinstance(action, ParallelWrite):
            yield from self._exec_parallel(client, action, trace)
        elif isinstance(action, SerialWrite):
            yield from self._exec_serial(client, action, trace)
        elif isinstance(action, ParityWrite):
            yield from self._exec_parity(client, action, trace)
        elif isinstance(action, OrthogonalWrite):
            yield from self._exec_orthogonal(client, action, trace)
        else:  # pragma: no cover - planner/engine contract violation
            raise NotImplementedError(
                f"no executor for plan node {type(action).__name__}"
            )

    def _check_copies(self, copies) -> None:
        """Raise when every copy of any block sits on a failed disk."""
        for cs in copies:
            if all(d in self.failed_disks for d in cs.disks):
                raise DataLossError(
                    f"block {cs.block}: every copy on a failed disk"
                )

    def _exec_parallel(self, client: int, action: ParallelWrite, trace):
        gens = []
        for mw in action.pieces:
            ops = mw.ops
            if mw.skip_failed:
                ops = tuple(
                    o for o in ops if o.disk not in self.failed_disks
                )
                if not ops and mw.require_alive:
                    raise DataLossError(
                        f"block {mw.block}: every copy on a failed disk"
                    )
            for o in ops:
                gens.append(self._issue_gen(client, o, trace))
        yield self.env.all_of(self.env.process_many(gens))
        if action.check_survivors:
            self._check_copies(action.copies)

    def _exec_serial(self, client: int, action: SerialWrite, trace):
        self._check_copies(action.copies)
        # Primary wave first, mirror wave after it commits.
        for wave in action.waves:
            events = self.env.process_many(
                self._issue_gen(client, o, trace)
                for o in wave
                if o.disk not in self.failed_disks
            )
            if events:
                yield self.env.all_of(events)
        self._check_copies(action.copies)

    # -- parity stripes (RAID-5) -------------------------------------------
    def _stripe_lock(self, stripe: int) -> Mutex:
        m = self._stripe_locks.get(stripe)
        if m is None:
            m = Mutex(self.env)
            self._stripe_locks[stripe] = m
        return m

    def _exec_parity(self, client: int, action: ParityWrite, trace):
        stripe_events = self.env.process_many(
            self._exec_stripe(client, sw, trace) for sw in action.stripes
        )
        yield self.env.all_of(stripe_events)

    def _exec_stripe(self, client: int, sw: StripeWrite, trace):
        cpu = self.cluster.nodes[client].cpu
        tracer = _obs.TRACER
        t0 = self.env.now
        # The queued request must be released (or cancelled) even if
        # this process is interrupted while waiting for the grant, so
        # the try covers the wait itself, not just the held region.
        lock = self._stripe_lock(sw.stripe).acquire(owner=client)
        try:
            yield lock
            if tracer.enabled:
                tracer.record(
                    LOCK_WAIT, f"node{client}.lock", t0, self.env.now,
                    trace=trace, group=sw.stripe, client=client,
                    scope="stripe",
                )
            parity_alive = sw.parity_disk not in self.failed_disks
            if sw.full_stripe is not None:
                # Full-stripe write: parity computed in memory, no reads.
                fsp = sw.full_stripe
                yield cpu.xor(fsp.xor_bytes)
                gens = [
                    self._issue_gen(client, o, trace)
                    for o in fsp.writes
                    if o.disk not in self.failed_disks
                ]
                if parity_alive:
                    gens.append(
                        self._issue_gen(client, fsp.parity_write, trace)
                    )
                yield self.env.all_of(self.env.process_many(gens))
                return

            for g in sw.rmw_passes:
                gens = [
                    self._issue_gen(client, o, trace)
                    for o in g.reads
                    if o.disk not in self.failed_disks
                ]
                if parity_alive:
                    gens.append(
                        self._issue_gen(client, g.parity_read, trace)
                    )
                reads = self.env.process_many(gens)
                if reads:
                    yield self.env.all_of(reads)
                # Two XOR passes: strip old data out of parity, add new.
                yield cpu.xor(g.xor_bytes, passes=2)
                gens = [
                    self._issue_gen(client, o, trace)
                    for o in g.writes
                    if o.disk not in self.failed_disks
                ]
                if parity_alive:
                    gens.append(
                        self._issue_gen(client, g.parity_write, trace)
                    )
                yield self.env.all_of(self.env.process_many(gens))
        finally:
            self._stripe_lock(sw.stripe).release(lock)

    # -- orthogonal striping and mirroring (RAID-x) ------------------------
    def _exec_orthogonal(self, client: int, action: OrthogonalWrite, trace):
        m = self.mirror
        m.coalesced_extents += len(action.extents)
        # Foreground: data blocks stripe across all disks in parallel.
        events = self.env.process_many(
            self._issue_gen(client, o, trace)
            for o in action.foreground
            # Degraded write: only the image will carry a block whose
            # primary disk has failed.
            if o.disk not in self.failed_disks
        )
        for e in action.extents:
            if e.disk not in self.failed_disks:
                m.dirty_groups.add(e.group)
        if not action.background:
            events.extend(
                self._flush_extents(client, action.extents, trace=trace)
            )
            if events:
                yield self.env.all_of(events)
            return
        if events:
            yield self.env.all_of(events)
        # Background: hand the clustered image extents to the flusher;
        # rewrites of an already-queued extent are absorbed.
        m.pending_flushes.extend(
            self._flush_extents(
                client, action.extents, absorb=True, trace=trace
            )
        )

    def _flush_extents(
        self, client: int, extents: Tuple[ImageExtent, ...],
        absorb: bool = False, trace=None,
    ) -> List[Event]:
        gens = []
        tracer = _obs.TRACER
        m = self.mirror
        for e in extents:
            if e.disk in self.failed_disks:
                continue
            key = (e.disk, e.offset, e.nbytes)
            if absorb:
                if key in m.queued_extents:
                    # Write-behind absorption: the queued flush will
                    # carry the newer contents of this extent.
                    m.absorbed_rewrites += 1
                    if tracer.enabled:
                        tracer.count("mirror.absorbed_rewrites")
                    continue
                m.queued_extents.add(key)
            gens.append(
                self._flush_one(
                    client, e.group, e.disk, e.offset, e.nbytes, key,
                    absorb, trace,
                )
            )
        # The OSM write-behind makes image flushes naturally bulk (the
        # n-1 images of a cluster in one batch): spawn them through the
        # kernel's heapify path rather than one sift per extent.
        return self.env.process_many(gens)

    def _flush_one(
        self, client, group, disk, off, nbytes, key, tracked, trace=None
    ):
        m = self.mirror
        exposed_at = self.env.now
        ctx = PieceContext(trace=trace, step="mirror")
        try:
            yield from self.cdd(client).block_io(
                "write", disk, off, nbytes, priority=1, ctx=ctx
            )
            m.vulnerability_windows.append(self.env.now - exposed_at)
            tracer = _obs.TRACER
            if tracer.enabled:
                owner = self.planner.layout.node_of_disk(disk)
                tracer.record(
                    MIRROR_FLUSH, f"node{owner}.mirror", exposed_at,
                    self.env.now, trace=trace, disk=disk, nbytes=nbytes,
                    deferred=tracked,
                )
        except DiskFailedError as e:
            # The image disk died under the flush: the data block still
            # lives on its primary, so mark the disk and move on.
            self.failed_disks.add(e.disk_id)
            if tracked:
                m.queued_extents.discard(key)
            return
        if tracked:
            m.queued_extents.discard(key)
        m.background_bytes += nbytes
        m.dirty_groups.discard(group)

    def drain(self):
        """Wait until every piece of background work has completed:
        cache destage sweeps first (they can enqueue image flushes),
        then the RAID-x write-behind flusher."""
        if self.cache is not None:
            yield from self.cache.drain()
        m = self.mirror
        while m.pending_flushes:
            pending, m.pending_flushes = m.pending_flushes, []
            yield self.env.all_of(pending)

    @property
    def pending_background_flushes(self) -> int:
        return sum(
            1 for e in self.mirror.pending_flushes if not e.processed
        )

    def vulnerability_stats(self) -> dict:
        """Mean/max/p95 of the image-flush exposure windows (seconds)."""
        w = self.mirror.vulnerability_windows
        if not w:
            return {"count": 0, "mean": 0.0, "max": 0.0, "p95": 0.0}
        ordered = sorted(w)
        return {
            "count": len(w),
            "mean": sum(w) / len(w),
            "max": ordered[-1],
            "p95": ordered[max(0, int(0.95 * len(ordered)) - 1)],
        }

"""Single I/O space: the global virtual disk over all distributed disks.

``SingleIOSpace`` owns the address arithmetic: it maps a logical byte
range of the virtual disk to per-disk *pieces* via the RAID layout, and
knows which node drives which disk (device masquerading — every node
sees all nk disks as local).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import AddressError
from repro.io.request import split_into_blocks
from repro.raid.layout import Layout
from repro.raid.plan import Piece

__all__ = ["Piece", "SingleIOSpace"]


class SingleIOSpace:
    """Global block addressing over the distributed array."""

    def __init__(self, layout: Layout):
        self.layout = layout

    @property
    def capacity(self) -> int:
        """Addressable bytes of the virtual disk."""
        return self.layout.data_capacity

    @property
    def block_size(self) -> int:
        return self.layout.block_size

    def node_of_disk(self, disk: int) -> int:
        return self.layout.node_of_disk(disk)

    def check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity:
            raise AddressError(
                f"range [{offset}, {offset + nbytes}) outside virtual disk "
                f"of {self.capacity} bytes"
            )

    def pieces(self, offset: int, nbytes: int) -> List[Piece]:
        """Split a logical byte range into per-disk pieces."""
        self.check_range(offset, nbytes)
        out = []
        for block, intra, take in split_into_blocks(
            offset, nbytes, self.block_size
        ):
            out.append(
                Piece(
                    block=block,
                    intra=intra,
                    nbytes=take,
                    placement=self.layout.data_location(block),
                )
            )
        return out

    def pieces_by_stripe(
        self, pieces: List[Piece]
    ) -> Dict[int, List[Piece]]:
        """Group pieces by the stripe group of their block."""
        out: Dict[int, List[Piece]] = {}
        for p in pieces:
            out.setdefault(self.layout.stripe_of(p.block), []).append(p)
        return out

    def blocks_touched(self, offset: int, nbytes: int) -> List[int]:
        """Logical blocks a byte range covers."""
        return [p.block for p in self.pieces(offset, nbytes)]

    def locality(self, pieces: List[Piece], node: int) -> Tuple[int, int]:
        """(local, remote) piece counts as seen from ``node``."""
        local = sum(
            1 for p in pieces if self.node_of_disk(p.disk) == node
        )
        return local, len(pieces) - local

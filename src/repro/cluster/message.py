"""Message vocabulary of the CDD protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

#: Fixed protocol header per message (request ids, addresses, checksums).
HEADER_BYTES = 128
#: Small acknowledgement / lock-grant message size.
ACK_BYTES = 64


class MessageKind(str, Enum):
    """Wire message types between cooperative disk drivers."""

    READ_REQ = "read_req"
    READ_REPLY = "read_reply"
    WRITE_REQ = "write_req"
    WRITE_ACK = "write_ack"
    LOCK_REQ = "lock_req"
    LOCK_GRANT = "lock_grant"
    LOCK_RELEASE = "lock_release"
    INVALIDATE = "invalidate"
    CKPT_MARKER = "ckpt_marker"
    RPC_REQ = "rpc_req"  # NFS-style user-level RPC
    RPC_REPLY = "rpc_reply"


@dataclass(frozen=True)
class Message:
    """One message on the fabric (payload is size-only: timing model)."""

    kind: MessageKind
    src: int
    dst: int
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("negative message size")


def read_request_size() -> int:
    return HEADER_BYTES


def read_reply_size(nbytes: int) -> int:
    return HEADER_BYTES + nbytes


def write_request_size(nbytes: int) -> int:
    return HEADER_BYTES + nbytes


def write_ack_size() -> int:
    return ACK_BYTES


@dataclass
class MessageStats:
    """Per-cluster accounting of protocol traffic."""

    by_kind: dict = field(default_factory=dict)
    total_messages: int = 0
    total_bytes: float = 0.0
    remote_block_ops: int = 0
    local_block_ops: int = 0

    def record(self, msg: Message) -> None:
        self.total_messages += 1
        self.total_bytes += msg.nbytes
        k = msg.kind.value
        cnt, size = self.by_kind.get(k, (0, 0.0))
        self.by_kind[k] = (cnt + 1, size + msg.nbytes)

    def summary(self) -> dict:
        return {
            "messages": self.total_messages,
            "bytes": self.total_bytes,
            "remote_block_ops": self.remote_block_ops,
            "local_block_ops": self.local_block_ops,
            "by_kind": dict(self.by_kind),
        }

"""The engine's cache admission/lookup stage (the timing half).

:mod:`repro.cache` is pure bookkeeping; this module owns everything
that runs: serving hits as local memory copies, filling misses through
the planner/engine read path, dirtying write-back blocks in place,
charging peer-invalidation control messages, and running destage
sweeps as background processes the system's ``drain`` waits on.

Placement in the request path (DESIGN §6.17–6.18)::

    submit -> CacheStage.try_fast_submit      (closed-form fast path)
              -> all-resident hit:  priced memcpy + _FFCacheHit replay
              -> clean miss fill:   Node.try_fast_forward + install
              -> anything else:     None -> fall through to
           -> ExecutionEngine.run
              -> CacheStage.run_request        (this module)
                 -> hits:   CDD cache_copy (one local memcpy)
                 -> misses: CDD cache_fill  -> engine.execute_read
                 -> writes: dirty in cache; invalidate peers
              -> background: CDD cache_destage -> engine.execute_write
                 (with a WriteContext naming the RMW-absorbed blocks)

Cache-off systems never construct a CacheStage, so the stage costs the
golden paths nothing — ``engine.run`` falls straight through to plan
execution, event-for-event identical to the pre-cache engine.
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, List, Optional, Tuple

from repro.cache import (
    BlockCache,
    CacheConfig,
    CacheDirectory,
    WriteAdmission,
    make_destage_policy,
)
from repro.cache.block import BlockState
from repro.cache.destage import DestageRun, coalesce_runs
from repro.cluster.message import ACK_BYTES, MessageKind
from repro.errors import DataLossError, DiskFailedError
from repro.io.request import split_into_blocks
from repro.obs import runtime as _obs
from repro.obs.trace import (
    CACHE_DESTAGE,
    CACHE_LOOKUP,
    CPU_DRIVER,
    REQUEST,
    SCSI_TRANSFER,
)
from repro.raid.plan import WriteContext
from repro.sim.events import _KEY_OFFSET, Event


def _pieces_of(
    offset: int, nbytes: int, bs: int
) -> List[Tuple[int, int, int]]:
    """``split_into_blocks`` with the dominant case inlined: a request
    contained in one block (every block-aligned workload op) skips the
    loop.  Geometry only — no priced quantity passes through here."""
    block, intra = divmod(offset, bs)
    if intra + nbytes <= bs:
        return [(block, intra, nbytes)]
    return split_into_blocks(offset, nbytes, bs)


class _FFCacheHit(Event):
    """Three-pop closed-form replay of :meth:`CacheStage.run_request`
    for an all-resident request (DESIGN §6.18).

    The eager half (:meth:`CacheStage._fast_hit`) performs the
    Initialize-pop mutations — recency/stats lookups or write
    admissions, the ``_active`` bracket, the CPU memcpy claim — at
    submit time; this event then occupies the same pop positions the
    phase request would.  An urgent pop at submit time stands in for
    the request process's ``Initialize`` (the trace id allocates there,
    in submit order, and the memcpy Timeout's heap key is drawn there
    too); a normal pop at the priced memcpy completion time stands in
    for the Timeout pop (peer invalidations go out, the cache/request
    spans record, bytes account, and the destage decision replays); and
    ``done``'s own pop stands in for the request Process pop the
    workload resumes on.  Every heap-key allocation lands at the exact
    sequence position the phase path would draw it, so same-time ties
    break identically.
    """

    __slots__ = (
        "stage_ref", "client", "op", "offset", "nbytes", "t0", "t1",
        "stage", "trace", "done", "hits", "dirtied", "absorbed", "blocks",
    )

    def __init__(
        self, stage: "CacheStage", client: int, op: str,
        offset: int, nbytes: int, t1: float,
    ):
        env = stage.env
        self.env = env
        self.callbacks: Optional[list] = [self._fire]
        self._value = None
        self._ok = True
        self._defused = False
        self.stage_ref = stage
        self.client = client
        self.op = op
        self.offset = offset
        self.nbytes = nbytes
        self.t0 = env.now
        self.t1 = t1
        self.stage = 0
        self.trace: Optional[int] = None
        #: The completion event handed to the workload (≡ the phase
        #: request's Process event).
        self.done = Event(env)
        self.hits = 0
        self.dirtied = 0
        self.absorbed = 0
        self.blocks: Tuple[int, ...] = ()
        # Urgent at submit time: the request Initialize's pop slot.
        heappush(env._queue, (self.t0, next(env._seq) - _KEY_OFFSET, self))

    def _fire(self, _event: Event) -> None:
        env = self.env
        st = self.stage_ref
        if self.stage == 0:
            # ≡ request Initialize pop: the body starts — trace id
            # allocates, then the memcpy claim's completion Timeout
            # draws a normal key at t1.
            self.stage = 1
            self.callbacks = [self._fire]
            tracer = _obs.TRACER
            self.trace = tracer.new_trace() if tracer.enabled else None
            heappush(env._queue, (self.t1, next(env._seq), self))
            return
        # ≡ memcpy Timeout pop: the request generator resumes and runs
        # to completion — same actions, same order.
        client = self.client
        tracer = _obs.TRACER
        if self.op == "read":
            if tracer.enabled:
                tracer.record(
                    CACHE_LOOKUP, f"node{client}.cache", self.t0, env.now,
                    trace=self.trace, op="read", hits=self.hits, misses=0,
                )
            st.engine.system.bytes_read += self.nbytes
        else:
            st._invalidate_peers(client, list(self.blocks))
            if tracer.enabled:
                tracer.record(
                    CACHE_LOOKUP, f"node{client}.cache", self.t0, env.now,
                    trace=self.trace, op="write", dirtied=self.dirtied,
                    absorbed=self.absorbed, fills=0,
                )
            st.engine.system.bytes_written += self.nbytes
        st._active -= 1
        if tracer.enabled:
            tracer.record(
                REQUEST, f"node{client}.request", self.t0, env.now,
                trace=self.trace, op=self.op, offset=self.offset,
                nbytes=self.nbytes, arch=st.engine.system.name,
            )
        st._maybe_destage(client, self.trace)
        self.done.succeed()


class _FFFillRun(Event):
    """Full pop-chain replay of a fast-forwarded clean-miss fill.

    The hit fast path may claim its memcpy eagerly at submit because
    the phase twin claims at the request-Initialize pop — the very next
    urgent slot, before any other claimant can run.  A *fill* is
    different: its phase twin claims CPU/SCSI one level deeper, at the
    **piece**-Initialize pop, which drains *after* every same-instant
    later submission's request-Initialize — a burst like ``[fill, hit,
    hit]`` from one client orders its CPU claims hit-hit-fill on the
    phase path, so claiming the fill eagerly at submit would invert
    that and shift every completion time.  And the *disk marker's* heap
    key is drawn later still, at the dispatch-wake pop when the bus
    transfer lands, so a marker keyed at submit time would jump
    same-time completion ties against concurrently finishing phase
    requests.

    This stepper therefore occupies the phase twin's pop positions one
    by one, performing each pop's observable actions with the priced
    closed-form times (stage number ≡ pop):

    0. request Initialize (urgent, submit instant) — trace id, miss and
       fill-op counters, the ``_active`` bracket; push stage 1 urgent.
    1. piece Initialize (urgent, submit instant) — issue counters; the
       CPU and SCSI claims land here, behind every same-instant memcpy
       claim the phase path orders first; the CPU Timeout's normal key
       at ``t1`` is drawn here.
    2. CPU Timeout pop (``t1``) — driver-entry span records; the SCSI
       Timeout's key at ``t2`` is drawn.
    3. SCSI Timeout pop (``t2``) — bus span records; ``disk.submit``'s
       wake-marker push replays (one normal key at now).
    4. dispatch-wake pop (``t2``) — :meth:`Disk.ff_preload` prices and
       arms the completion marker, drawing its key exactly where the
       phase path's run loop re-arms it.
    5. fill-read completion pop (``t3``, the preloaded request's
       ``done``) — the piece process would finish; one normal push.
    6. piece Process pop — the AllOf condition fires; one normal push.
    7. AllOf pop — the request generator's epilogue: the fill installs
       (``note_cached``), the cache/request spans record, bytes
       account, ``_active`` releases, the destage decision replays, and
       the workload's ``done`` proxy is succeeded (≡ the request
       Process push).

    Claiming *unconditionally* at stage 1 is legal because the only
    pops between submit and stage 1 are same-instant Initializes of
    later submissions, whose memcpy claims queue behind ``_free_at``
    without invalidating any predicate; and deferring the disk preload
    to stage 4 is legal because the stage-1 CPU and SCSI claims fence
    the disk — every path that can reach it (local pieces, remote
    manager work, destage write-backs) claims this node's CPU and bus
    first, so nothing arrives before ``t2`` (DESIGN §6.18).
    """

    __slots__ = (
        "stage_ref", "client", "block", "offset", "nbytes", "disk",
        "io_op", "io_offset", "io_nbytes", "priority", "stage", "done",
        "trace", "t0", "t1", "t2",
    )

    def __init__(
        self, stage: "CacheStage", client: int, block: int,
        offset: int, nbytes: int, disk, io_op: str, io_offset: int,
        io_nbytes: int, priority: int,
    ):
        env = stage.env
        self.env = env
        self.callbacks: Optional[list] = [self._fire]
        self._value = None
        self._ok = True
        self._defused = False
        self.stage_ref = stage
        self.client = client
        self.block = block
        self.offset = offset
        self.nbytes = nbytes
        self.disk = disk
        self.io_op = io_op
        self.io_offset = io_offset
        self.io_nbytes = io_nbytes
        self.priority = priority
        self.stage = 0
        self.trace: Optional[int] = None
        self.t0 = env.now
        self.t1 = 0.0
        self.t2 = 0.0
        #: The completion event handed to the workload (≡ the phase
        #: request's Process event).
        self.done = Event(env)
        # Urgent at submit time: the request Initialize's pop slot.
        heappush(env._queue, (self.t0, next(env._seq) - _KEY_OFFSET, self))

    def _fire(self, _event: Event) -> None:
        env = self.env
        st = self.stage_ref
        client = self.client
        stage = self.stage
        self.stage = stage + 1
        self.callbacks = [self._fire]
        tracer = _obs.TRACER
        if stage == 0:
            # ≡ request Initialize pop: the body starts — trace id
            # allocates, the lookup misses, the fill routes into the
            # CDD, and the piece process spawns (second urgent push).
            if tracer.enabled:
                self.trace = tracer.new_trace()
            st._active += 1
            st.caches[client].stats.misses += 1
            st.engine.cdd(client).cache_fill_ops += 1
            heappush(
                env._queue, (env._now, next(env._seq) - _KEY_OFFSET, self)
            )
        elif stage == 1:
            # ≡ piece Initialize pop: the piece body starts — issue
            # counters bump and the CPU/SCSI claims land at exactly
            # this slot, behind every same-instant memcpy claim the
            # phase path orders first.  The push at t1 draws the CPU
            # Timeout's key.
            engine = st.engine
            cdd = engine.cdd(client)
            cdd.issued_ops += 1
            cdd.transport.stats.local_block_ops += 1
            node = engine.cluster.nodes[client]
            self.t1 = node.ff_claim_cpu(
                node.config.cpu.kernel_request_overhead_s
            )
            self.t2 = node.ff_claim_scsi(self.t1, self.io_nbytes)
            heappush(env._queue, (self.t1, next(env._seq), self))
        elif stage == 2:
            # ≡ CPU Timeout pop: the driver-entry span records; the
            # SCSI Timeout's key at t2 is drawn.
            if tracer.enabled:
                tracer.record(
                    CPU_DRIVER, f"node{client}.cpu", self.t0, self.t1,
                    trace=self.trace,
                )
            heappush(env._queue, (self.t2, next(env._seq), self))
        elif stage == 3:
            # ≡ SCSI Timeout pop: the bus span records, then the piece
            # submits to the parked disk — one wake-marker push at now.
            if tracer.enabled:
                tracer.record(
                    SCSI_TRANSFER, f"node{client}.scsi", self.t1, self.t2,
                    trace=self.trace, nbytes=self.io_nbytes,
                )
            if self.disk.failed:
                # ≡ disk.submit failing the request at this pop; the
                # stepper folds the phase path's failure unwind into
                # one hop before failing the workload's proxy.
                self.stage = 8
                heappush(env._queue, (env._now, next(env._seq), self))
                return
            heappush(env._queue, (env._now, next(env._seq), self))
        elif stage == 4:
            # ≡ dispatch-wake pop: the disk prices the read against the
            # same head state and arms the completion marker here, so
            # the marker's heap key is drawn at the phase slot.  Only
            # now does the disk leave its parked state — the pending
            # -fill veto held every later fill off the fast path for
            # the whole deferral window, and every other route to the
            # disk runs through the CPU and bus this fill holds until
            # now, so the submit-time predicate must still hold.
            if not self.disk.ff_ready(
                self.io_op, self.io_offset, self.io_nbytes
            ):
                raise RuntimeError(
                    "deferred fill preload raced: disk "
                    f"{self.disk.disk_id} was touched during the "
                    "claim window (pending-fill fence broken)"
                )
            done = self.disk.ff_preload(
                self.io_op, self.io_offset, self.io_nbytes, env._now,
                priority=self.priority, trace=self.trace,
            )
            st._ff_fill_pending[client] -= 1
            done.callbacks.append(self._fire)
        elif stage == 5:
            # ≡ the fill read's completion pop: the piece process
            # finishes (one normal push).
            heappush(env._queue, (env._now, next(env._seq), self))
        elif stage == 6:
            # ≡ piece Process pop: the AllOf fires (one normal push).
            heappush(env._queue, (env._now, next(env._seq), self))
        elif stage == 7:
            # ≡ AllOf pop: the request generator's epilogue — install,
            # record, account, release, destage decision, and the
            # request Process push the workload resumes on.
            st.directory.note_cached(client, self.block)
            if tracer.enabled:
                tracer.record(
                    CACHE_LOOKUP, f"node{client}.cache", self.t0, env.now,
                    trace=self.trace, op="read", hits=0, misses=1,
                )
            st.engine.system.bytes_read += self.nbytes
            st._active -= 1
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", self.t0, env.now,
                    trace=self.trace, op="read", offset=self.offset,
                    nbytes=self.nbytes, arch=st.engine.system.name,
                )
            st._maybe_destage(client, self.trace)
            self.done.succeed()
        else:
            # Failure unwind (from stage 3): the request epilogue's
            # finally-clause actions, then the proxy fails.
            st._active -= 1
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", self.t0, env.now,
                    trace=self.trace, op="read", offset=self.offset,
                    nbytes=self.nbytes, arch=st.engine.system.name,
                )
            self.done.fail(DiskFailedError(self.disk.disk_id))


class CacheStage:
    """Per-system buffer-cache layer: one cache per node, one shared
    write-invalidate directory, and the destage machinery."""

    def __init__(self, engine, config: CacheConfig) -> None:
        self.engine = engine
        self.env = engine.env
        self.config = config
        n = len(engine.cluster.nodes)
        self.caches: List[BlockCache] = [
            BlockCache(
                i,
                capacity_blocks=config.capacity_blocks,
                policy=config.policy,
                track_blocks=config.track_blocks,
            )
            for i in range(n)
        ]
        self.directory = CacheDirectory(self.caches)
        self.policy = make_destage_policy(config, self._group_of())
        #: Foreground requests currently inside the stage (idle detect).
        self._active = 0
        #: One destage sweep per node at a time.
        self._destaging: List[bool] = [False] * n
        #: Fast-forwarded fills between submit and their deferred claim
        #: pop (at most one per client; see :class:`_FFFillRun`).
        self._ff_fill_pending: List[int] = [0] * n
        #: Outstanding destage-sweep processes (drain joins these).
        self._sweeps: List[Event] = []
        #: Static per-node memcpy rate, hoisted off the submit path.
        self._memcpy_rate: List[float] = [
            node.cpu.params.memcpy_rate for node in engine.cluster.nodes
        ]

    def _group_of(self) -> Callable[[int], int]:
        """Block -> redundancy-group id for mirror-coalescing destage:
        the RAID-x mirror group when the layout has one, else the
        stripe (contiguous either way, so runs stay single-write)."""
        layout = self.engine.planner.layout
        mirror_group_of = getattr(layout, "mirror_group_of", None)
        if mirror_group_of is not None:
            return lambda b: mirror_group_of(b).group_id
        return layout.stripe_of

    @property
    def block_size(self) -> int:
        return self.engine.system.block_size

    @property
    def dirty_or_destaging(self) -> bool:
        """The fast-forward conflict predicate: any unwritten data, or
        a destage sweep in flight, anywhere in the stage."""
        return any(c.dirty_count for c in self.caches) or any(
            self._destaging
        )

    # -- submit-time fast path ---------------------------------------------
    def try_fast_submit(
        self, client: int, op: str, offset: int, nbytes: int
    ) -> Optional[Event]:
        """Closed-form execution of the two dominant cache outcomes.

        Dispatched from :meth:`ExecutionEngine.try_fast_submit` (which
        has already established no failed disks and no in-flight phase
        requests from this client).  Prices analytically:

        * an **all-resident hit** — every piece resident (reads accept
          any state; writes need write-back mode, no fill, and headroom
          under the destage threshold): one memcpy claim plus a
          three-pop :class:`_FFCacheHit` replay;
        * a **clean single-piece read miss** — nothing dirty, no
          destage sweep in flight: the existing node fast-forward
          prices the fill read and the fill installs at completion.

        Everything else returns ``None`` and falls through to the
        event-driven path, having charged and mutated nothing.  The
        legality argument is DESIGN §6.18.
        """
        if nbytes <= 0:
            return None
        engine = self.engine
        node = engine.cluster.nodes[client]
        if not node.fast_forward:
            return None
        cpu_link = node.cpu._work
        if cpu_link.outstanding or cpu_link.congestion_threshold is not None:
            # A hit is priced on the CPU work link with the same eager
            # arithmetic as the node fast-forward: only legal while the
            # link is provably idle (DESIGN §6.14 applies unchanged).
            return None
        bs = engine.system.block_size
        pieces = _pieces_of(offset, nbytes, bs)
        cache = self.caches[client]
        if op == "read":
            if len(pieces) == 1:
                block = pieces[0][0]
                if block in cache:
                    return self._fast_hit(
                        client, op, offset, nbytes, pieces
                    )
                return self._fast_fill(client, offset, nbytes, block)
            if all(block in cache for block, _intra, _take in pieces):
                return self._fast_hit(client, op, offset, nbytes, pieces)
            return None
        if not self.config.writeback:
            return None  # write-through commits to disk: never priced
        would_dirty = 0
        for block, intra, take in pieces:
            verdict = cache.ff_write_verdict(
                block, full_block=(intra == 0 and take == bs)
            )
            if verdict is WriteAdmission.NEEDS_FILL:
                return None  # RMW fill reads disk: event path
            if verdict is WriteAdmission.DIRTIED:
                would_dirty += 1
        if self.policy.ff_would_destage(cache, would_dirty):
            # Keep threshold-crossing writes on the event path: the
            # fast path never puts the cache under destage pressure.
            return None
        return self._fast_hit(client, op, offset, nbytes, pieces)

    def _fast_hit(
        self, client: int, op: str, offset: int, nbytes: int, pieces
    ) -> Event:
        """Eager half of an all-resident fast hit.

        Performs the Initialize-pop mutations now — per-piece recency
        and hit/admission bookkeeping in piece order, the ``_active``
        bracket, the memcpy claim — with the same float arithmetic and
        the same mutation order ``run_request`` uses, then hands the
        deferred half (spans, invalidations, byte accounting, destage
        check) to :class:`_FFCacheHit`.
        """
        engine = self.engine
        node = engine.cluster.nodes[client]
        memcpy_rate = self._memcpy_rate[client]
        dirtied = absorbed = 0
        if op == "read":
            hit_bytes = 0
            for block, _intra, take in pieces:
                self.directory.lookup(client, block)
                hit_bytes += take
            seconds = hit_bytes / memcpy_rate
        else:
            bs = self.block_size
            cache = self.caches[client]
            for block, intra, take in pieces:
                verdict = cache.admit_write(
                    block, full_block=(intra == 0 and take == bs)
                )
                if verdict is WriteAdmission.ABSORBED:
                    absorbed += 1
                else:
                    dirtied += 1
            seconds = nbytes / memcpy_rate
        self._active += 1
        t1 = node.ff_claim_cpu(seconds)
        ev = _FFCacheHit(self, client, op, offset, nbytes, t1)
        if op == "read":
            ev.hits = len(pieces)
        else:
            ev.dirtied = dirtied
            ev.absorbed = absorbed
            ev.blocks = tuple(p[0] for p in pieces)
        engine.fast_submits += 1
        engine.fast_hits += 1
        return ev.done

    def _fast_fill(
        self, client: int, offset: int, nbytes: int, block: int
    ) -> Optional[Event]:
        """Closed-form clean read miss: a conflict-free one-piece fill.

        With nothing dirty in this cache and no destage sweep in flight
        (any sweep's plan writes may hold pending-invisible claims on
        this node's pipeline, exactly the ``phase_inflight`` hazard),
        the fill is the same single-piece local read the uncached fast
        path prices.  All predicates are checked here, claim-free; the
        claims themselves are deferred to the piece-Initialize pop slot
        by :class:`_FFFillRun`, so same-instant later submissions keep
        their phase-path claim order.  At most one fill defers per
        client at a time: the disk stays *parked* until the deferred
        preload lands at the bus-delivery time, so a second fill
        submitted anywhere in that window would wrongly pass
        ``ff_ready`` — the pending-fill veto holds it (and only it; no
        other path can reach a local disk without claiming the CPU and
        bus this fill already holds) on the event path instead."""
        if self.caches[client].dirty_count or any(self._destaging):
            return None
        if self._ff_fill_pending[client]:
            return None
        engine = self.engine
        resolved = engine._ff_resolved(client, "read", offset, nbytes)
        if resolved is None:
            return None
        disk_id, io_op, io_offset, io_nbytes, priority = resolved
        node = engine.cluster.nodes[client]
        disk = node.ff_ready_chain(disk_id, io_op, io_offset, io_nbytes)
        if disk is None:
            return None
        self._ff_fill_pending[client] += 1
        run = _FFFillRun(
            self, client, block, offset, nbytes, disk,
            io_op, io_offset, io_nbytes, priority,
        )
        engine.fast_submits += 1
        engine.fast_fills += 1
        return run.done

    # -- the admission/lookup stage ----------------------------------------
    def run_request(self, client: int, op: str, offset: int, nbytes: int):
        """Process generator: one logical request through the cache."""
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        self._active += 1
        try:
            if op == "read":
                yield from self._read(client, offset, nbytes, trace)
                self.engine.system.bytes_read += nbytes
            else:
                yield from self._write(client, offset, nbytes, trace)
                self.engine.system.bytes_written += nbytes
        finally:
            self._active -= 1
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", t0, self.env.now,
                    trace=trace, op=op, offset=offset, nbytes=nbytes,
                    arch=self.engine.system.name,
                )
        self._maybe_destage(client, trace)

    def _read(self, client: int, offset: int, nbytes: int, trace):
        bs = self.block_size
        cdd = self.engine.cdd(client)
        t0 = self.env.now
        hit_bytes = 0
        hits = misses = 0
        miss_runs: List[List[int]] = []  # [start, end) byte ranges
        for block, intra, take in split_into_blocks(offset, nbytes, bs):
            if self.directory.lookup(client, block):
                hits += 1
                hit_bytes += take
                continue
            misses += 1
            start = block * bs + intra
            if miss_runs and miss_runs[-1][1] == start:
                miss_runs[-1][1] = start + take
            else:
                miss_runs.append([start, start + take])
        if hit_bytes:
            yield from cdd.cache_copy(hit_bytes)
        for start, end in miss_runs:
            yield from cdd.cache_fill(
                self.engine, client, start, end - start, trace
            )
            for b in range(start // bs, (end - 1) // bs + 1):
                self.directory.note_cached(client, b)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="read", hits=hits, misses=misses,
            )

    def _write(self, client: int, offset: int, nbytes: int, trace):
        if not self.config.writeback:
            yield from self._write_through(client, offset, nbytes, trace)
            return
        bs = self.block_size
        cache = self.caches[client]
        cdd = self.engine.cdd(client)
        t0 = self.env.now
        pieces = split_into_blocks(offset, nbytes, bs)
        # RMW absorption at the cache level: a partial write of a
        # non-resident block fills the whole block first, so the cache
        # holds the pre-write content and the eventual destage can skip
        # the RAID-5 old-data pre-read.
        fill_blocks = [
            block
            for block, intra, take in pieces
            if (intra != 0 or take != bs) and block not in cache
        ]
        for run in coalesce_runs(fill_blocks, len(fill_blocks) or 1):
            yield from cdd.cache_fill(
                self.engine, client, run.start_block * bs,
                run.n_blocks * bs, trace,
            )
            for b in run.blocks:
                cache.fill(b)
        dirtied = absorbed = 0
        for block, intra, take in pieces:
            verdict = cache.admit_write(
                block, full_block=(intra == 0 and take == bs)
            )
            if verdict is WriteAdmission.ABSORBED:
                absorbed += 1
            else:
                dirtied += 1
        # One local copy lands the payload in the cache.
        yield from cdd.cache_copy(nbytes)
        self._invalidate_peers(client, [p[0] for p in pieces])
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="write", dirtied=dirtied,
                absorbed=absorbed, fills=len(fill_blocks),
            )

    def _write_through(self, client: int, offset: int, nbytes: int, trace):
        """Write-through mode: commit to disk first, cache clean after."""
        bs = self.block_size
        t0 = self.env.now
        yield from self.engine.execute_write(client, offset, nbytes, trace)
        blocks = [b for b, _intra, _take in split_into_blocks(
            offset, nbytes, bs
        )]
        self._invalidate_peers(client, blocks)
        for b in blocks:
            self.directory.note_cached(client, b)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="write", mode="writethrough",
                blocks=len(blocks),
            )

    def _invalidate_peers(self, client: int, blocks: List[int]) -> None:
        """The write-invalidate protocol: one fire-and-forget control
        message per peer that actually held a written block."""
        transport = self.engine.cluster.transport
        for block in blocks:
            for peer in self.directory.invalidate_peers(client, block):
                transport.send(
                    MessageKind.INVALIDATE, client, peer, ACK_BYTES
                )
            self.directory.note_resident(client, block)

    # -- destage -----------------------------------------------------------
    def _maybe_destage(self, client: int, trace) -> None:
        cache = self.caches[client]
        if self._destaging[client]:
            return
        if not self.policy.should_destage(cache, idle=self._active == 0):
            return
        self._spawn_sweep(client, self.policy.select(cache), trace)

    def _spawn_sweep(
        self, client: int, runs: List[DestageRun], trace
    ) -> None:
        if not runs:
            return
        self._destaging[client] = True
        self._sweeps.append(
            self.env.process(self._destage_sweep(client, runs, trace))
        )

    def _destage_sweep(self, client: int, runs: List[DestageRun], trace):
        """Background process: write selected dirty runs back to disk.

        A disk failure mid-destage marks-and-continues when redundancy
        absorbs it (the engine's tolerant-write path); an unrecoverable
        failure reports each block lost exactly once via
        :meth:`BlockCache.destage_lost`."""
        cache = self.caches[client]
        bs = self.block_size
        cdd = self.engine.cdd(client)
        tracer = _obs.TRACER
        try:
            for run in runs:
                # Re-validate: foreground writes or peer invalidations
                # may have raced this sweep between its yields.
                live = [
                    b for b in run.blocks
                    if cache.state_of(b) is BlockState.DIRTY
                ]
                for sub in coalesce_runs(live, len(live) or 1):
                    yield from self._destage_run(
                        client, cache, cdd, sub, bs, tracer, trace
                    )
        finally:
            self._destaging[client] = False

    def _destage_run(
        self, client, cache, cdd, run: DestageRun, bs, tracer, trace
    ):
        cache.begin_destage(list(run.blocks))
        yield from self._write_back(
            client, cache, cdd, run, bs, tracer, trace, split=True
        )

    def _write_back(
        self, client, cache, cdd, run: DestageRun, bs, tracer, trace,
        split: bool,
    ):
        """Write one run of DESTAGING blocks back through the engine.

        A failed multi-block run is retried block by block (``split``)
        so that only blocks the array genuinely cannot store any more
        are reported lost — a coalesced run spans several disks, and
        one dead disk must not drag its healthy neighbours down."""
        blocks = list(run.blocks)
        wctx = WriteContext(
            absorbed=frozenset(b for b in blocks if cache.old_known(b))
        )
        t0 = self.env.now
        failed = False
        try:
            yield from cdd.cache_destage(
                self.engine, client, run.start_block * bs,
                run.n_blocks * bs, trace, wctx,
            )
        except DiskFailedError as e:
            self.engine.failed_disks.add(e.disk_id)
            failed = True
        except DataLossError:
            failed = True
        lost = False
        if not failed:
            cache.complete_destage(blocks)
            cache.stats.destage_batches += 1
        elif split and len(blocks) > 1:
            for b in blocks:
                yield from self._write_back(
                    client, cache, cdd, DestageRun(b, (b,)), bs,
                    tracer, trace, split=False,
                )
        else:
            cache.destage_lost(blocks)
            lost = True
        if tracer.enabled:
            tracer.record(
                CACHE_DESTAGE, f"node{client}.cache", t0, self.env.now,
                trace=trace, start_block=run.start_block,
                blocks=run.n_blocks, lost=lost,
                split=failed and not lost,
            )

    def drain(self):
        """Process generator: destage everything, join every sweep.

        Sweep spawns go through ``Environment.process_many`` — a drain
        burst across all node caches is one heapified Initialize batch
        rather than one sift per sweep (timing-identical, same
        contract as the engine's batched plan executors)."""
        while True:
            spawns = []
            for client, cache in enumerate(self.caches):
                if cache.dirty_blocks() and not self._destaging[client]:
                    runs = coalesce_runs(
                        cache.dirty_blocks(), self.config.destage_batch
                    )
                    if runs:
                        self._destaging[client] = True
                        spawns.append(
                            self._destage_sweep(client, runs, None)
                        )
            self._sweeps.extend(self.env.process_many(spawns))
            if not self._sweeps:
                return
            sweeps, self._sweeps = self._sweeps, []
            yield self.env.all_of(sweeps)

    # -- reporting ---------------------------------------------------------
    def hit_rates(self) -> List[float]:
        return [c.hit_rate() for c in self.caches]

"""The engine's cache admission/lookup stage (the timing half).

:mod:`repro.cache` is pure bookkeeping; this module owns everything
that runs: serving hits as local memory copies, filling misses through
the planner/engine read path, dirtying write-back blocks in place,
charging peer-invalidation control messages, and running destage
sweeps as background processes the system's ``drain`` waits on.

Placement in the request path (DESIGN §6.17)::

    submit -> [fast-forward: vetoed while a cache is attached]
           -> ExecutionEngine.run
              -> CacheStage.run_request        (this module)
                 -> hits:   CDD cache_copy (one local memcpy)
                 -> misses: CDD cache_fill  -> engine.execute_read
                 -> writes: dirty in cache; invalidate peers
              -> background: CDD cache_destage -> engine.execute_write
                 (with a WriteContext naming the RMW-absorbed blocks)

Cache-off systems never construct a CacheStage, so the stage costs the
golden paths nothing — ``engine.run`` falls straight through to plan
execution, event-for-event identical to the pre-cache engine.
"""

from __future__ import annotations

from typing import Callable, List

from repro.cache import (
    BlockCache,
    CacheConfig,
    CacheDirectory,
    WriteAdmission,
    make_destage_policy,
)
from repro.cache.block import BlockState
from repro.cache.destage import DestageRun, coalesce_runs
from repro.cluster.message import ACK_BYTES, MessageKind
from repro.errors import DataLossError, DiskFailedError
from repro.io.request import split_into_blocks
from repro.obs import runtime as _obs
from repro.obs.trace import CACHE_DESTAGE, CACHE_LOOKUP, REQUEST
from repro.raid.plan import WriteContext
from repro.sim.events import Event


class CacheStage:
    """Per-system buffer-cache layer: one cache per node, one shared
    write-invalidate directory, and the destage machinery."""

    def __init__(self, engine, config: CacheConfig) -> None:
        self.engine = engine
        self.env = engine.env
        self.config = config
        n = len(engine.cluster.nodes)
        self.caches: List[BlockCache] = [
            BlockCache(
                i,
                capacity_blocks=config.capacity_blocks,
                policy=config.policy,
                track_blocks=config.track_blocks,
            )
            for i in range(n)
        ]
        self.directory = CacheDirectory(self.caches)
        self.policy = make_destage_policy(config, self._group_of())
        #: Foreground requests currently inside the stage (idle detect).
        self._active = 0
        #: One destage sweep per node at a time.
        self._destaging: List[bool] = [False] * n
        #: Outstanding destage-sweep processes (drain joins these).
        self._sweeps: List[Event] = []

    def _group_of(self) -> Callable[[int], int]:
        """Block -> redundancy-group id for mirror-coalescing destage:
        the RAID-x mirror group when the layout has one, else the
        stripe (contiguous either way, so runs stay single-write)."""
        layout = self.engine.planner.layout
        mirror_group_of = getattr(layout, "mirror_group_of", None)
        if mirror_group_of is not None:
            return lambda b: mirror_group_of(b).group_id
        return layout.stripe_of

    @property
    def block_size(self) -> int:
        return self.engine.system.block_size

    @property
    def dirty_or_destaging(self) -> bool:
        """The fast-forward conflict predicate: any unwritten data, or
        a destage sweep in flight, anywhere in the stage."""
        return any(c.dirty_count for c in self.caches) or any(
            self._destaging
        )

    # -- the admission/lookup stage ----------------------------------------
    def run_request(self, client: int, op: str, offset: int, nbytes: int):
        """Process generator: one logical request through the cache."""
        tracer = _obs.TRACER
        trace = tracer.new_trace() if tracer.enabled else None
        t0 = self.env.now
        self._active += 1
        try:
            if op == "read":
                yield from self._read(client, offset, nbytes, trace)
                self.engine.system.bytes_read += nbytes
            else:
                yield from self._write(client, offset, nbytes, trace)
                self.engine.system.bytes_written += nbytes
        finally:
            self._active -= 1
            if tracer.enabled:
                tracer.record(
                    REQUEST, f"node{client}.request", t0, self.env.now,
                    trace=trace, op=op, offset=offset, nbytes=nbytes,
                    arch=self.engine.system.name,
                )
        self._maybe_destage(client, trace)

    def _read(self, client: int, offset: int, nbytes: int, trace):
        bs = self.block_size
        cdd = self.engine.cdd(client)
        t0 = self.env.now
        hit_bytes = 0
        hits = misses = 0
        miss_runs: List[List[int]] = []  # [start, end) byte ranges
        for block, intra, take in split_into_blocks(offset, nbytes, bs):
            if self.directory.lookup(client, block):
                hits += 1
                hit_bytes += take
                continue
            misses += 1
            start = block * bs + intra
            if miss_runs and miss_runs[-1][1] == start:
                miss_runs[-1][1] = start + take
            else:
                miss_runs.append([start, start + take])
        if hit_bytes:
            yield from cdd.cache_copy(hit_bytes)
        for start, end in miss_runs:
            yield from cdd.cache_fill(
                self.engine, client, start, end - start, trace
            )
            for b in range(start // bs, (end - 1) // bs + 1):
                self.directory.note_cached(client, b)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="read", hits=hits, misses=misses,
            )

    def _write(self, client: int, offset: int, nbytes: int, trace):
        if not self.config.writeback:
            yield from self._write_through(client, offset, nbytes, trace)
            return
        bs = self.block_size
        cache = self.caches[client]
        cdd = self.engine.cdd(client)
        t0 = self.env.now
        pieces = split_into_blocks(offset, nbytes, bs)
        # RMW absorption at the cache level: a partial write of a
        # non-resident block fills the whole block first, so the cache
        # holds the pre-write content and the eventual destage can skip
        # the RAID-5 old-data pre-read.
        fill_blocks = [
            block
            for block, intra, take in pieces
            if (intra != 0 or take != bs) and block not in cache
        ]
        for run in coalesce_runs(fill_blocks, len(fill_blocks) or 1):
            yield from cdd.cache_fill(
                self.engine, client, run.start_block * bs,
                run.n_blocks * bs, trace,
            )
            for b in run.blocks:
                cache.fill(b)
        dirtied = absorbed = 0
        for block, intra, take in pieces:
            verdict = cache.admit_write(
                block, full_block=(intra == 0 and take == bs)
            )
            if verdict is WriteAdmission.ABSORBED:
                absorbed += 1
            else:
                dirtied += 1
        # One local copy lands the payload in the cache.
        yield from cdd.cache_copy(nbytes)
        self._invalidate_peers(client, [p[0] for p in pieces])
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="write", dirtied=dirtied,
                absorbed=absorbed, fills=len(fill_blocks),
            )

    def _write_through(self, client: int, offset: int, nbytes: int, trace):
        """Write-through mode: commit to disk first, cache clean after."""
        bs = self.block_size
        t0 = self.env.now
        yield from self.engine.execute_write(client, offset, nbytes, trace)
        blocks = [b for b, _intra, _take in split_into_blocks(
            offset, nbytes, bs
        )]
        self._invalidate_peers(client, blocks)
        for b in blocks:
            self.directory.note_cached(client, b)
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.record(
                CACHE_LOOKUP, f"node{client}.cache", t0, self.env.now,
                trace=trace, op="write", mode="writethrough",
                blocks=len(blocks),
            )

    def _invalidate_peers(self, client: int, blocks: List[int]) -> None:
        """The write-invalidate protocol: one fire-and-forget control
        message per peer that actually held a written block."""
        transport = self.engine.cluster.transport
        for block in blocks:
            for peer in self.directory.invalidate_peers(client, block):
                transport.send(
                    MessageKind.INVALIDATE, client, peer, ACK_BYTES
                )
            self.directory.note_resident(client, block)

    # -- destage -----------------------------------------------------------
    def _maybe_destage(self, client: int, trace) -> None:
        cache = self.caches[client]
        if self._destaging[client]:
            return
        if not self.policy.should_destage(cache, idle=self._active == 0):
            return
        self._spawn_sweep(client, self.policy.select(cache), trace)

    def _spawn_sweep(
        self, client: int, runs: List[DestageRun], trace
    ) -> None:
        if not runs:
            return
        self._destaging[client] = True
        self._sweeps.append(
            self.env.process(self._destage_sweep(client, runs, trace))
        )

    def _destage_sweep(self, client: int, runs: List[DestageRun], trace):
        """Background process: write selected dirty runs back to disk.

        A disk failure mid-destage marks-and-continues when redundancy
        absorbs it (the engine's tolerant-write path); an unrecoverable
        failure reports each block lost exactly once via
        :meth:`BlockCache.destage_lost`."""
        cache = self.caches[client]
        bs = self.block_size
        cdd = self.engine.cdd(client)
        tracer = _obs.TRACER
        try:
            for run in runs:
                # Re-validate: foreground writes or peer invalidations
                # may have raced this sweep between its yields.
                live = [
                    b for b in run.blocks
                    if cache.state_of(b) is BlockState.DIRTY
                ]
                for sub in coalesce_runs(live, len(live) or 1):
                    yield from self._destage_run(
                        client, cache, cdd, sub, bs, tracer, trace
                    )
        finally:
            self._destaging[client] = False

    def _destage_run(
        self, client, cache, cdd, run: DestageRun, bs, tracer, trace
    ):
        cache.begin_destage(list(run.blocks))
        yield from self._write_back(
            client, cache, cdd, run, bs, tracer, trace, split=True
        )

    def _write_back(
        self, client, cache, cdd, run: DestageRun, bs, tracer, trace,
        split: bool,
    ):
        """Write one run of DESTAGING blocks back through the engine.

        A failed multi-block run is retried block by block (``split``)
        so that only blocks the array genuinely cannot store any more
        are reported lost — a coalesced run spans several disks, and
        one dead disk must not drag its healthy neighbours down."""
        blocks = list(run.blocks)
        wctx = WriteContext(
            absorbed=frozenset(b for b in blocks if cache.old_known(b))
        )
        t0 = self.env.now
        failed = False
        try:
            yield from cdd.cache_destage(
                self.engine, client, run.start_block * bs,
                run.n_blocks * bs, trace, wctx,
            )
        except DiskFailedError as e:
            self.engine.failed_disks.add(e.disk_id)
            failed = True
        except DataLossError:
            failed = True
        lost = False
        if not failed:
            cache.complete_destage(blocks)
            cache.stats.destage_batches += 1
        elif split and len(blocks) > 1:
            for b in blocks:
                yield from self._write_back(
                    client, cache, cdd, DestageRun(b, (b,)), bs,
                    tracer, trace, split=False,
                )
        else:
            cache.destage_lost(blocks)
            lost = True
        if tracer.enabled:
            tracer.record(
                CACHE_DESTAGE, f"node{client}.cache", t0, self.env.now,
                trace=trace, start_block=run.start_block,
                blocks=run.n_blocks, lost=lost,
                split=failed and not lost,
            )

    def drain(self):
        """Process generator: destage everything, join every sweep."""
        while True:
            for client, cache in enumerate(self.caches):
                if cache.dirty_blocks() and not self._destaging[client]:
                    runs = coalesce_runs(
                        cache.dirty_blocks(), self.config.destage_batch
                    )
                    self._spawn_sweep(client, runs, None)
            if not self._sweeps:
                return
            sweeps, self._sweeps = self._sweeps, []
            yield self.env.all_of(sweeps)

    # -- reporting ---------------------------------------------------------
    def hit_rates(self) -> List[float]:
        return [c.hit_rate() for c in self.caches]

"""Cooperative disk drivers (CDDs).

Each node runs one CDD made of the paper's three modules:

* **client module** — redirects block I/O on any disk of the single I/O
  space; local disks go straight to the SCSI path, remote disks ride the
  CDD request/reply protocol at kernel level (no cross-space system
  calls, no central server);
* **storage manager** — serves incoming requests against the node's
  local disks; in the simulation the manager's work is executed inline
  by the requesting process against the owner node's shared resources
  (CPU, SCSI bus, disk queues), which yields identical contention timing
  to an explicit server loop;
* **consistency module** — the replicated lock-group table, shared with
  the other CDDs via :class:`repro.cluster.consistency.DistributedLockManager`.
"""

from __future__ import annotations

from typing import List

from repro.cluster.message import (
    MessageKind,
    read_reply_size,
    read_request_size,
    write_ack_size,
    write_request_size,
)
from repro.cluster.transport import Transport
from repro.hardware.node import Node
from repro.io.context import PieceContext
from repro.obs import runtime as _obs
from repro.obs.trace import CPU_DRIVER


class CooperativeDiskDriver:
    """One node's CDD: client module + storage manager + consistency."""

    def __init__(
        self,
        node: Node,
        nodes: List[Node],
        transport: Transport,
        lock_manager=None,
        manager_servers=None,
    ):
        """``manager_servers``: optional per-node explicit storage-manager
        servers (see :mod:`repro.cluster.manager`).  When absent, remote
        manager work executes inline against the owner node's resources —
        timing-equivalent to an unbounded-concurrency server."""
        self.node = node
        self.nodes = nodes
        self.transport = transport
        self.lock_manager = lock_manager
        self.manager_servers = manager_servers
        #: Ops served by this CDD acting as a storage manager for peers.
        self.served_remote_ops = 0
        #: Ops this CDD's client module issued (local + remote).
        self.issued_ops = 0
        #: Buffer-cache traffic routed through this CDD (fills are
        #: block-aligned miss/RMW reads; destages are dirty write-backs).
        self.cache_fill_ops = 0
        self.cache_destage_ops = 0

    @property
    def node_id(self) -> int:
        return self.node.node_id

    def owner_of(self, disk: int) -> int:
        """The node driving a global disk id (Fig. 3 numbering)."""
        return disk % len(self.nodes)

    # -- client module -----------------------------------------------------
    def _driver_entry(self, node: Node, trace):
        """Charge (and trace) one kernel driver entry on ``node``."""
        tracer = _obs.TRACER
        t0 = node.env.now
        yield node.cpu.driver_entry(kernel_level=True)
        if tracer.enabled:
            tracer.record(
                CPU_DRIVER, f"node{node.node_id}.cpu", t0, node.env.now,
                trace=trace,
            )

    def block_io(
        self, op: str, disk: int, offset: int, nbytes: int, priority: int = 0,
        trace=None, ctx: PieceContext | None = None,
    ):
        """Process generator: one block operation anywhere in the SIOS.

        Completes when the data is on disk (write) or delivered to this
        node (read).  ``ctx`` is the per-piece execution context the
        plan executor threads through the stack (trace id, plan step,
        retry budget); ``trace`` remains for callers outside the plan
        path and wins when both are given.  Either way the trace id
        propagates to every span the hop records (CPU, NIC, SCSI,
        disk).
        """
        if trace is None and ctx is not None:
            trace = ctx.trace
        self.issued_ops += 1
        owner = self.owner_of(disk)
        me = self.node_id
        if owner == me:
            self.transport.stats.local_block_ops += 1
            yield from self._driver_entry(self.node, trace)
            yield from self.node.disk_io(
                disk, op, offset, nbytes, priority, trace=trace
            )
            return

        # Remote path: request message -> manager work -> reply message.
        self.transport.stats.remote_block_ops += 1
        yield from self._driver_entry(self.node, trace)
        if op == "read":
            yield from self.transport.message(
                MessageKind.READ_REQ, me, owner, read_request_size(),
                trace=trace, ctx=ctx,
            )
            yield from self._manage(
                owner, op, disk, offset, nbytes, priority, trace
            )
            yield from self.transport.message(
                MessageKind.READ_REPLY, owner, me, read_reply_size(nbytes),
                trace=trace, ctx=ctx,
            )
        else:
            yield from self.transport.message(
                MessageKind.WRITE_REQ, me, owner, write_request_size(nbytes),
                trace=trace, ctx=ctx,
            )
            yield from self._manage(
                owner, op, disk, offset, nbytes, priority, trace
            )
            yield from self.transport.message(
                MessageKind.WRITE_ACK, owner, me, write_ack_size(),
                trace=trace, ctx=ctx,
            )

    def submit(
        self, op: str, disk: int, offset: int, nbytes: int, priority: int = 0,
        trace=None, ctx: PieceContext | None = None,
    ):
        """Run :meth:`block_io` as a process; returns its completion event."""
        return self.node.env.process(
            self.block_io(op, disk, offset, nbytes, priority, trace, ctx)
        )

    # -- buffer-cache routing ----------------------------------------------
    def cache_copy(self, nbytes: int):
        """Process generator: serve bytes from this node's buffer cache
        — one local memory copy, no disk or network traffic.  (The
        fast path prices the same copy in closed form via
        ``Node.ff_claim_cpu`` instead of running this generator.)"""
        yield self.node.cpu.memcpy(nbytes)

    def cache_fill(self, engine, client: int, offset: int, nbytes: int,
                   trace=None):
        """Process generator: route one cache fill (read-miss service or
        a read-modify-write fill) down the planner/engine read path.
        (A fast-forwarded clean-miss fill bypasses this generator and
        bumps ``cache_fill_ops`` eagerly at submit — DESIGN §6.18.)"""
        self.cache_fill_ops += 1
        yield from engine.execute_read(client, offset, nbytes, trace)

    def cache_destage(self, engine, client: int, offset: int, nbytes: int,
                      trace=None, wctx=None):
        """Process generator: route one destage write-back down the
        planner/engine write path.  ``wctx`` carries the RMW-absorbed
        block set to the parity planner."""
        self.cache_destage_ops += 1
        yield from engine.execute_write(client, offset, nbytes, trace,
                                        wctx=wctx)

    # -- storage manager -----------------------------------------------------
    def _manage(
        self, owner: int, op: str, disk: int, offset: int, nbytes: int,
        priority: int, trace=None,
    ):
        """The remote storage manager's share of a request."""
        if self.manager_servers is not None:
            server = self.manager_servers[owner]
            server.max_queue_seen = max(
                server.max_queue_seen, server.queue_length + 1
            )
            yield server.submit(
                op, disk, offset, nbytes, priority=priority,
                client=self.node_id, trace=trace,
            )
            return
        manager_node = self.nodes[owner]
        yield from self._driver_entry(manager_node, trace)
        yield from manager_node.disk_io(
            disk, op, offset, nbytes, priority, trace=trace
        )

    # -- consistency module ---------------------------------------------------
    def acquire_write_locks(self, blocks, trace=None):
        """Process generator: lock the groups covering ``blocks``."""
        if self.lock_manager is None:
            return None
        handle = yield from self.lock_manager.acquire(
            self.node_id, blocks, trace=trace
        )
        return handle

    def release_write_locks(self, handle, trace=None):
        """Process generator: release locks acquired earlier."""
        if self.lock_manager is None or handle is None:
            return
        yield from self.lock_manager.release(handle, trace=trace)

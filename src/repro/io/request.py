"""Logical I/O requests against the single I/O space.

A client issues an :class:`IORequest` over a *global* byte range of the
virtual disk; the RAID layout maps it to per-disk block operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class IORequest:
    """A logical read or write over the global virtual-disk address space."""

    op: str  # "read" | "write"
    offset: int  # global byte offset
    nbytes: int
    client_node: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError("negative offset or size")

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


def split_into_blocks(
    offset: int, nbytes: int, block_size: int
) -> List[Tuple[int, int, int]]:
    """Split a byte range into (block_index, intra_offset, length) pieces.

    Pieces never cross block boundaries; partial first/last blocks are
    represented by a non-zero ``intra_offset`` / short ``length``.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if nbytes < 0:
        raise ValueError("negative size")
    out: List[Tuple[int, int, int]] = []
    pos = offset
    end = offset + nbytes
    while pos < end:
        block = pos // block_size
        intra = pos - block * block_size
        take = min(block_size - intra, end - pos)
        out.append((block, intra, take))
        pos += take
    return out


def block_span(offset: int, nbytes: int, block_size: int) -> range:
    """The range of block indices a byte range touches."""
    if nbytes <= 0:
        return range(0)
    first = offset // block_size
    last = (offset + nbytes - 1) // block_size
    return range(first, last + 1)

"""Per-piece execution context threaded through the block-I/O stack.

One :class:`PieceContext` rides along with each physical block
operation the execution engine issues, replacing the ad-hoc ``trace=``
argument plumbing: the CDD and the transport resolve the trace id from
the context when no explicit one is given, and the engine's degraded
retry loop keeps its attempt count and retry budget here instead of in
loop-local variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PieceContext:
    """Context travelling with one physical block operation."""

    #: Logical-request trace id (spans of every hop tag themselves
    #: with it); ``None`` when tracing is disabled.
    trace: Optional[int] = None
    #: Plan-step label: the role of this op in its plan
    #: ("data" / "parity" / "mirror" / "reconstruct").
    step: str = "data"
    #: Retry number for degraded reads (0 = first issue).
    attempt: int = 0
    #: Maximum retries before the engine gives up re-sourcing a read;
    #: ``None`` = unbounded (each retry marks a new disk failed, so the
    #: loop terminates regardless).
    retry_budget: Optional[int] = None
    #: The owning :class:`repro.raid.plan.IOPlan`, when the issuer
    #: wants downstream layers to see the whole plan.
    plan: Optional[object] = None

    @property
    def exhausted(self) -> bool:
        """True when the retry budget is spent."""
        return (
            self.retry_budget is not None
            and self.attempt >= self.retry_budget
        )

"""I/O path helpers: request objects and per-disk queue disciplines."""

from repro.io.request import IORequest, split_into_blocks
from repro.io.scheduler import (
    DiskScheduler,
    FifoScheduler,
    LookScheduler,
    SstfScheduler,
    make_scheduler,
)

__all__ = [
    "DiskScheduler",
    "FifoScheduler",
    "IORequest",
    "LookScheduler",
    "SstfScheduler",
    "make_scheduler",
    "split_into_blocks",
]

"""Per-disk queue disciplines.

The disk's server process pulls the next request through one of these
policies.  All of them serve *priority class 0 before class 1* (class 1
is RAID-x's background mirror traffic — the paper's "images updated at
the background"), applying their geometric policy within a class.

Complexity: SSTF and LOOK keep each priority class as a sorted list of
distinct offsets (bisect insert/remove) with a FIFO bucket of requests
per offset, so selecting the next request is O(log n) instead of the
O(n) scan of the straightforward implementation.  Arrival order is
tracked with a per-scheduler sequence number, which makes tie-breaking
(equidistant offsets under SSTF, equal offsets everywhere) *identical*
to the O(n) scans — pinned by the equivalence property tests in
``tests/hardware/test_scheduler_equivalence.py``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.hardware.disk import DiskRequest
from repro.obs import runtime as _obs


class _OffsetQueue:
    """Sorted distinct offsets + per-offset FIFO buckets for one class."""

    __slots__ = ("offsets", "buckets", "size")

    def __init__(self) -> None:
        self.offsets: List[int] = []
        self.buckets: Dict[int, Deque[Tuple[int, DiskRequest]]] = {}
        self.size = 0

    def __len__(self) -> int:
        return self.size

    def push(self, seq: int, req: DiskRequest) -> None:
        off = req.offset
        bucket = self.buckets.get(off)
        if bucket is None:
            bucket = self.buckets[off] = deque()
            insort(self.offsets, off)
        bucket.append((seq, req))
        self.size += 1

    def take(self, idx: int) -> DiskRequest:
        """Pop the earliest-arrived request at ``offsets[idx]``."""
        off = self.offsets[idx]
        bucket = self.buckets[off]
        _seq, req = bucket.popleft()
        if not bucket:
            del self.buckets[off]
            self.offsets.pop(idx)
        self.size -= 1
        return req

    def head_seq(self, idx: int) -> int:
        """Arrival sequence of the earliest request at ``offsets[idx]``."""
        return self.buckets[self.offsets[idx]][0][0]


class DiskScheduler:
    """Interface: a mutable bag of pending requests with a pop policy.

    Requests live in per-priority-class queues; :meth:`pop` serves the
    lowest non-empty class.  Active class ids are kept in a small sorted
    list, so finding that class is a short scan (almost always length
    one or two) instead of a ``min()`` over a dict per pop.
    """

    def __init__(self) -> None:
        self._count = 0
        self._seq = 0
        self._classes: List[int] = []  # sorted active class ids
        self._by_class: Dict[int, object] = {}
        #: Deepest simultaneous backlog ever held (queueing pressure).
        self.max_depth_seen = 0

    # -- policy hooks ----------------------------------------------------
    def _new_queue(self):
        """Per-class queue structure (FIFO deque by default)."""
        return deque()

    def _push(self, queue, req: DiskRequest) -> None:
        queue.append(req)

    def _pop(self, queue, head: int) -> DiskRequest:
        return queue.popleft()

    # -- interface -------------------------------------------------------
    def push(self, req: DiskRequest) -> None:
        """Add a request to the pending set."""
        cls = req.priority
        queue = self._by_class.get(cls)
        if queue is None:
            queue = self._by_class[cls] = self._new_queue()
            insort(self._classes, cls)
        self._push(queue, req)
        self._seq += 1
        self._count += 1
        if self._count > self.max_depth_seen:
            self.max_depth_seen = self._count
        tracer = _obs.TRACER
        if tracer.enabled:
            tracer.count(
                "sched.enqueued.foreground"
                if cls == 0
                else "sched.enqueued.background"
            )

    def empty(self) -> bool:
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    def pop(self, head: int) -> DiskRequest:
        """Remove and return the next request given the head position."""
        if self._count == 0:
            raise IndexError("pop from empty scheduler")
        for cls in self._classes:
            queue = self._by_class[cls]
            if len(queue):
                self._count -= 1
                return self._pop(queue, head)
        raise IndexError("pop from empty scheduler")  # pragma: no cover


class FifoScheduler(DiskScheduler):
    """First-come, first-served within a priority class."""


class SstfScheduler(DiskScheduler):
    """Shortest-seek-time-first: nearest offset to the head wins.

    O(log n) per pop: bisect the sorted offsets around the head and
    compare the two neighbours.  When both sides are equidistant the
    earlier-arrived request wins, exactly like the linear scan it
    replaces.
    """

    def _new_queue(self) -> _OffsetQueue:
        return _OffsetQueue()

    def _push(self, queue: _OffsetQueue, req: DiskRequest) -> None:
        queue.push(self._seq, req)

    def _pop(self, queue: _OffsetQueue, head: int) -> DiskRequest:
        offsets = queue.offsets
        i = bisect_left(offsets, head)
        if i == len(offsets):
            return queue.take(i - 1)
        if i == 0:
            return queue.take(0)
        d_hi = offsets[i] - head
        d_lo = head - offsets[i - 1]
        if d_hi < d_lo:
            return queue.take(i)
        if d_lo < d_hi:
            return queue.take(i - 1)
        # Equidistant: earliest arrival wins.
        if queue.head_seq(i - 1) < queue.head_seq(i):
            return queue.take(i - 1)
        return queue.take(i)


class LookScheduler(DiskScheduler):
    """Elevator (LOOK): sweep upward, reverse at the last request.

    O(log n) per pop: the next request in the sweep direction is the
    bisect neighbour of the head; the direction flips only when nothing
    lies at-or-beyond the head in the current direction.
    """

    def __init__(self) -> None:
        super().__init__()
        self._direction = 1

    def _new_queue(self) -> _OffsetQueue:
        return _OffsetQueue()

    def _push(self, queue: _OffsetQueue, req: DiskRequest) -> None:
        queue.push(self._seq, req)

    def _pop(self, queue: _OffsetQueue, head: int) -> DiskRequest:
        offsets = queue.offsets
        if self._direction > 0:
            i = bisect_left(offsets, head)
            if i == len(offsets):  # nothing at or above: reverse
                self._direction = -1
                i -= 1
        else:
            i = bisect_right(offsets, head) - 1
            if i < 0:  # nothing at or below: reverse
                self._direction = 1
                i = 0
        return queue.take(i)


_POLICIES = {
    "fifo": FifoScheduler,
    "fcfs": FifoScheduler,
    "sstf": SstfScheduler,
    "look": LookScheduler,
    "elevator": LookScheduler,
}


def make_scheduler(policy: Optional[str]) -> DiskScheduler:
    """Instantiate a scheduler by name (default FIFO)."""
    if policy is None:
        return FifoScheduler()
    try:
        return _POLICIES[policy.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; "
            f"choose from {sorted(set(_POLICIES))}"
        ) from None

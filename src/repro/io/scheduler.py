"""Per-disk queue disciplines.

The disk's server process pulls the next request through one of these
policies.  All of them serve *priority class 0 before class 1* (class 1
is RAID-x's background mirror traffic — the paper's "images updated at
the background"), applying their geometric policy within a class.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hardware.disk import DiskRequest


class DiskScheduler:
    """Interface: a mutable bag of pending requests with a pop policy."""

    def __init__(self) -> None:
        self._queues: dict[int, List[DiskRequest]] = {}
        self._count = 0

    def push(self, req: DiskRequest) -> None:
        """Add a request to the pending set."""
        self._queues.setdefault(req.priority, []).append(req)
        self._count += 1

    def empty(self) -> bool:
        return self._count == 0

    def __len__(self) -> int:
        return self._count

    def pop(self, head: int) -> DiskRequest:
        """Remove and return the next request given the head position."""
        if self._count == 0:
            raise IndexError("pop from empty scheduler")
        cls = min(k for k, q in self._queues.items() if q)
        queue = self._queues[cls]
        idx = self._select(queue, head)
        self._count -= 1
        return queue.pop(idx)

    def _select(self, queue: List[DiskRequest], head: int) -> int:
        raise NotImplementedError


class FifoScheduler(DiskScheduler):
    """First-come, first-served within a priority class."""

    def _select(self, queue: List[DiskRequest], head: int) -> int:
        return 0


class SstfScheduler(DiskScheduler):
    """Shortest-seek-time-first: nearest offset to the head wins."""

    def _select(self, queue: List[DiskRequest], head: int) -> int:
        best, best_d = 0, None
        for i, req in enumerate(queue):
            d = abs(req.offset - head)
            if best_d is None or d < best_d:
                best, best_d = i, d
        return best


class LookScheduler(DiskScheduler):
    """Elevator (LOOK): sweep upward, reverse at the last request."""

    def __init__(self) -> None:
        super().__init__()
        self._direction = 1

    def _select(self, queue: List[DiskRequest], head: int) -> int:
        def candidates(direction: int):
            return [
                (i, req.offset)
                for i, req in enumerate(queue)
                if (req.offset - head) * direction >= 0
            ]

        ahead = candidates(self._direction)
        if not ahead:
            self._direction = -self._direction
            ahead = candidates(self._direction)
        # Nearest in the sweep direction.
        best_i, _ = min(ahead, key=lambda t: abs(t[1] - head))
        return best_i


_POLICIES = {
    "fifo": FifoScheduler,
    "fcfs": FifoScheduler,
    "sstf": SstfScheduler,
    "look": LookScheduler,
    "elevator": LookScheduler,
}


def make_scheduler(policy: Optional[str]) -> DiskScheduler:
    """Instantiate a scheduler by name (default FIFO)."""
    if policy is None:
        return FifoScheduler()
    try:
        return _POLICIES[policy.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler policy {policy!r}; "
            f"choose from {sorted(set(_POLICIES))}"
        ) from None

"""Exception hierarchy for the RAID-x reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """Invalid cluster, array, or hardware configuration."""


class AddressError(ReproError):
    """A block address falls outside the device or array."""


class LayoutError(ReproError):
    """A RAID layout invariant was violated (e.g. orthogonality)."""


class DiskFailedError(ReproError):
    """An I/O touched a disk that is marked failed."""

    def __init__(self, disk_id: int, message: str = ""):
        super().__init__(message or f"disk {disk_id} has failed")
        self.disk_id = disk_id


class DataLossError(ReproError):
    """A failure pattern exceeded the layout's fault coverage."""


class DegradedModeError(DataLossError):
    """A disk failed under a back-end with no redundancy to absorb it.

    Raised by ``fail_disk`` on non-redundant systems (RAID-0, NFS) so
    every architecture reports entering an unrecoverable degraded mode
    through one typed path instead of diverging per system.
    """

    def __init__(self, arch: str, disk: int):
        super().__init__(
            f"{arch}: disk {disk} failed and the layout stores no "
            f"redundancy — degraded mode is unrecoverable"
        )
        self.arch = arch
        self.disk = disk


class LockProtocolError(ReproError):
    """The CDD lock-group protocol was used incorrectly."""


class FileSystemError(ReproError):
    """Errors from the simulated file system layer."""


class FileNotFound(FileSystemError):
    """Path lookup failed."""


class FileExists(FileSystemError):
    """Exclusive creation hit an existing entry."""


class NotADirectory(FileSystemError):
    """A path component was not a directory."""


class IsADirectory(FileSystemError):
    """File data operation attempted on a directory."""


class NoSpaceError(FileSystemError):
    """Block or inode allocation failed: device full."""


class CheckpointError(ReproError):
    """Checkpoint write or recovery failed."""

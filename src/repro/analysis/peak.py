"""Table 2 — expected peak performance of the four RAID architectures.

Closed-form models in the paper's parameters: ``n`` disks of bandwidth
``B``; files of ``m`` blocks; per-block read/write times ``R``/``W``.
Column order follows the paper: RAID-10, RAID-5, chained declustering,
RAID-x.  Where the source text is unambiguous we match it exactly
(RAID-5 read ``(n-1)B``, RAID-5 small write ``R+W``, RAID-x large write
``mW/n + mW/(n(n-1))``); the remaining entries are re-derived from the
architectures' op counts (see EXPERIMENTS.md §T2 for the derivations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

ARCH_ORDER = ("raid10", "raid5", "chained", "raidx")

INDICATORS = (
    "max_bw_read",
    "max_bw_large_write",
    "max_bw_small_write",
    "t_large_read",
    "t_small_read",
    "t_large_write",
    "t_small_write",
    "fault_coverage",
)

#: Human-readable formula strings, for the printed table.
FORMULAS: Dict[str, Dict[str, str]] = {
    "raid10": {
        "max_bw_read": "nB",
        "max_bw_large_write": "nB/2",
        "max_bw_small_write": "nB/2",
        "t_large_read": "mR/n",
        "t_small_read": "R",
        "t_large_write": "2mW/n",
        "t_small_write": "W",
        "fault_coverage": "n/2 disk failures (one per mirror pair)",
    },
    "raid5": {
        "max_bw_read": "(n-1)B",
        "max_bw_large_write": "(n-1)B",
        "max_bw_small_write": "nB/4",
        "t_large_read": "mR/(n-1)",
        "t_small_read": "R",
        "t_large_write": "mW/(n-1)",
        "t_small_write": "R+W",
        "fault_coverage": "single disk failure",
    },
    "chained": {
        "max_bw_read": "nB",
        "max_bw_large_write": "nB/2",
        "max_bw_small_write": "nB/2",
        "t_large_read": "mR/n",
        "t_small_read": "R",
        "t_large_write": "2mW/n",
        "t_small_write": "W",
        "fault_coverage": "n/2 disk failures (no two adjacent)",
    },
    "raidx": {
        "max_bw_read": "nB",
        "max_bw_large_write": "nB",
        "max_bw_small_write": "nB",
        "t_large_read": "mR/n",
        "t_small_read": "R",
        "t_large_write": "mW/n + mW/(n(n-1))",
        "t_small_write": "W",
        "fault_coverage": "single failure per stripe group (k total)",
    },
}


@dataclass(frozen=True)
class PeakModel:
    """Parameter set for the closed-form evaluation."""

    n: int  # disks in the array (stripe width for RAID-x)
    B: float  # per-disk bandwidth
    m: int  # blocks per file
    R: float  # block read time
    W: float  # block write time

    def __post_init__(self) -> None:
        if self.n < 2 or self.m < 1:
            raise ValueError("need n >= 2 disks and m >= 1 blocks")
        if min(self.B, self.R, self.W) <= 0:
            raise ValueError("B, R, W must be positive")

    # -- per-architecture rows ------------------------------------------
    def raid10(self) -> Dict[str, float]:
        n, B, m, R, W = self.n, self.B, self.m, self.R, self.W
        return {
            "max_bw_read": n * B,
            "max_bw_large_write": n * B / 2,
            "max_bw_small_write": n * B / 2,
            "t_large_read": m * R / n,
            "t_small_read": R,
            "t_large_write": 2 * m * W / n,
            "t_small_write": W,
            "fault_coverage": n // 2,
        }

    def raid5(self) -> Dict[str, float]:
        n, B, m, R, W = self.n, self.B, self.m, self.R, self.W
        return {
            "max_bw_read": (n - 1) * B,
            "max_bw_large_write": (n - 1) * B,
            "max_bw_small_write": n * B / 4,
            "t_large_read": m * R / (n - 1),
            "t_small_read": R,
            "t_large_write": m * W / (n - 1),
            "t_small_write": R + W,
            "fault_coverage": 1,
        }

    def chained(self) -> Dict[str, float]:
        row = self.raid10()
        row["fault_coverage"] = self.n // 2
        return row

    def raidx(self) -> Dict[str, float]:
        n, B, m, R, W = self.n, self.B, self.m, self.R, self.W
        return {
            "max_bw_read": n * B,
            "max_bw_large_write": n * B,
            "max_bw_small_write": n * B,
            "t_large_read": m * R / n,
            "t_small_read": R,
            "t_large_write": m * W / n + m * W / (n * (n - 1)),
            "t_small_write": W,
            "fault_coverage": 1,  # per stripe group; k total for n×k
        }

    def row(self, arch: str) -> Dict[str, float]:
        try:
            return getattr(self, arch)()
        except AttributeError:
            raise ValueError(f"unknown architecture {arch!r}") from None


def peak_table(model: PeakModel) -> Dict[str, Dict[str, float]]:
    """The full Table 2 as ``{arch: {indicator: value}}``."""
    return {arch: model.row(arch) for arch in ARCH_ORDER}


def write_improvement_over_chained(n: int) -> float:
    """The paper's §2 claim: RAID-x's parallel-write improvement factor
    over chained declustering "approaches two" for large arrays."""
    if n < 2:
        raise ValueError("n >= 2")
    # Foreground write time ratio: (2mW/n) / (mW/n + mW/(n(n-1))).
    return 2.0 / (1.0 + 1.0 / (n - 1))

"""Bottleneck analysis: which resource limits a run?

Inspects a cluster's cumulative resource accounting after a workload and
ranks utilizations — the "where did the time go" companion to the
bandwidth numbers, used by the sensitivity benchmark (A11) to verify
that scaling the *named* bottleneck actually moves throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class ResourceUsage:
    """Mean and peak utilization of one resource class."""

    name: str
    mean: float
    peak: float


def resource_usage(cluster) -> List[ResourceUsage]:
    """Utilization (busy fraction since t=0) per resource class."""
    now = cluster.env.now
    if now <= 0:
        return []

    def frac(busy: float) -> float:
        return min(1.0, busy / now)

    disks = cluster.all_disks()
    disk_u = [frac(d.stats.busy_time) for d in disks]
    disk_fg_u = [frac(d.stats.busy_time_foreground) for d in disks]
    tx_u = [frac(n.tx.busy_time) for n in cluster.network.nics]
    rx_u = [frac(n.rx.busy_time) for n in cluster.network.nics]
    cpu_u = [frac(node.cpu._work.busy_time) for node in cluster.nodes]
    scsi_u = [node.scsi.utilization() for node in cluster.nodes]

    def usage(name: str, vals: List[float]) -> ResourceUsage:
        if not vals:
            return ResourceUsage(name, 0.0, 0.0)
        return ResourceUsage(name, sum(vals) / len(vals), max(vals))

    return [
        usage("disk", disk_u),
        usage("disk_foreground", disk_fg_u),
        usage("nic_tx", tx_u),
        usage("nic_rx", rx_u),
        usage("cpu", cpu_u),
        usage("scsi", scsi_u),
    ]


#: Classes eligible to be *named* the bottleneck.  Total disk busy time
#: is reported but excluded: background traffic (RAID-x image flushes)
#: has slack and inflates it without sitting on the critical path — the
#: foreground share is the meaningful signal.
_CRITICAL_CLASSES = ("disk_foreground", "nic_tx", "nic_rx", "cpu", "scsi")


def bottleneck(cluster) -> ResourceUsage:
    """The critical-path resource class with the highest peak
    utilization (see ``_CRITICAL_CLASSES`` for why raw disk utilization
    is excluded)."""
    usages = [
        u for u in resource_usage(cluster) if u.name in _CRITICAL_CLASSES
    ]
    if not usages:
        raise ValueError("cluster has not run yet")
    return max(usages, key=lambda u: u.peak)


def usage_table(cluster) -> Dict[str, Dict[str, float]]:
    """{resource: {mean, peak}} for reports."""
    return {
        u.name: {"mean": round(u.mean, 3), "peak": round(u.peak, 3)}
        for u in resource_usage(cluster)
    }

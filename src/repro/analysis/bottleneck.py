"""Bottleneck analysis: which resource limits a run?

Inspects a cluster's cumulative resource accounting after a workload and
ranks utilizations — the "where did the time go" companion to the
bandwidth numbers, used by the sensitivity benchmark (A11) to verify
that scaling the *named* bottleneck actually moves throughput.

When request tracing is on (:mod:`repro.obs`), the report is built from
the recorded spans instead of the hardware counters: per-track busy time
is the sum of span durations, which additionally yields the foreground /
background disk split from the spans' ``priority`` args.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.obs import runtime as _obs
from repro.obs.trace import (
    CPU_DRIVER,
    CPU_PROTO,
    DISK_SERVICE,
    NET_RX,
    NET_TX,
    SCSI_TRANSFER,
)


@dataclass
class ResourceUsage:
    """Mean and peak utilization of one resource class."""

    name: str
    mean: float
    peak: float


#: Span kind → resource class for span-based usage accounting.
_SPAN_CLASS = {
    DISK_SERVICE: "disk",
    NET_TX: "nic_tx",
    NET_RX: "nic_rx",
    CPU_DRIVER: "cpu",
    CPU_PROTO: "cpu",
    SCSI_TRANSFER: "scsi",
}

_CLASS_ORDER = ("disk", "disk_foreground", "nic_tx", "nic_rx", "cpu", "scsi")


def _usage(name: str, vals: List[float]) -> ResourceUsage:
    if not vals:
        return ResourceUsage(name, 0.0, 0.0)
    return ResourceUsage(name, sum(vals) / len(vals), max(vals))


def span_resource_usage(spans: Iterable, now: float) -> List[ResourceUsage]:
    """Per-class utilization computed from recorded spans.

    Each track's busy time is the summed duration of its spans of the
    class's kinds; ``disk_foreground`` keeps only disk-service spans
    whose ``priority`` arg is 0 (foreground data ops, not background
    image flushes).
    """
    if now <= 0:
        return []
    busy: Dict[str, Dict[str, float]] = {c: {} for c in _CLASS_ORDER}
    for span in spans:
        cls = _SPAN_CLASS.get(span.kind)
        if cls is None:
            continue
        d = span.end - span.start
        track_busy = busy[cls]
        track_busy[span.track] = track_busy.get(span.track, 0.0) + d
        if cls == "disk" and (span.args or {}).get("priority", 0) == 0:
            fg = busy["disk_foreground"]
            fg[span.track] = fg.get(span.track, 0.0) + d
    return [
        _usage(
            cls,
            [min(1.0, b / now) for b in busy[cls].values()],
        )
        for cls in _CLASS_ORDER
    ]


def resource_usage(cluster, spans: Optional[Iterable] = None
                   ) -> List[ResourceUsage]:
    """Utilization (busy fraction since t=0) per resource class.

    With ``spans`` (or an installed, non-empty tracer), the figures come
    from the recorded spans; otherwise from the hardware busy-time
    counters.
    """
    now = cluster.env.now
    if now <= 0:
        return []
    if spans is None:
        tracer = _obs.TRACER
        if tracer.enabled and len(tracer):
            spans = tracer.spans
    if spans is not None:
        return span_resource_usage(spans, now)

    def frac(busy: float) -> float:
        return min(1.0, busy / now)

    disks = cluster.all_disks()
    disk_u = [frac(d.stats.busy_time) for d in disks]
    disk_fg_u = [frac(d.stats.busy_time_foreground) for d in disks]
    tx_u = [frac(n.tx.busy_time) for n in cluster.network.nics]
    rx_u = [frac(n.rx.busy_time) for n in cluster.network.nics]
    cpu_u = [frac(node.cpu._work.busy_time) for node in cluster.nodes]
    scsi_u = [node.scsi.utilization() for node in cluster.nodes]

    return [
        _usage("disk", disk_u),
        _usage("disk_foreground", disk_fg_u),
        _usage("nic_tx", tx_u),
        _usage("nic_rx", rx_u),
        _usage("cpu", cpu_u),
        _usage("scsi", scsi_u),
    ]


#: Classes eligible to be *named* the bottleneck.  Total disk busy time
#: is reported but excluded: background traffic (RAID-x image flushes)
#: has slack and inflates it without sitting on the critical path — the
#: foreground share is the meaningful signal.
_CRITICAL_CLASSES = ("disk_foreground", "nic_tx", "nic_rx", "cpu", "scsi")


def bottleneck(cluster, spans: Optional[Iterable] = None) -> ResourceUsage:
    """The critical-path resource class with the highest peak
    utilization (see ``_CRITICAL_CLASSES`` for why raw disk utilization
    is excluded)."""
    usages = [
        u
        for u in resource_usage(cluster, spans)
        if u.name in _CRITICAL_CLASSES
    ]
    if not usages:
        raise ValueError("cluster has not run yet")
    return max(usages, key=lambda u: u.peak)


def usage_table(cluster, spans: Optional[Iterable] = None
                ) -> Dict[str, Dict[str, float]]:
    """{resource: {mean, peak}} for reports."""
    return {
        u.name: {"mean": round(u.mean, 3), "peak": round(u.peak, 3)}
        for u in resource_usage(cluster, spans)
    }

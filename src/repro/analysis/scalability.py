"""Scalability metrics: improvement factors and scaling efficiency.

The paper's Table 3 reports "achievable I/O bandwidth and improvement
factor" — aggregate bandwidth at 12 clients over 1 client.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def improvement_factor(bw_one_client: float, bw_n_clients: float) -> float:
    """Table 3's improvement metric: BW(N) / BW(1)."""
    if bw_one_client <= 0:
        raise ValueError("baseline bandwidth must be positive")
    return bw_n_clients / bw_one_client


def scaling_efficiency(
    clients: Sequence[int], bandwidth: Sequence[float]
) -> List[float]:
    """Per-point efficiency: (BW(c)/BW(c0)) / (c/c0), 1.0 = linear."""
    if len(clients) != len(bandwidth) or not clients:
        raise ValueError("series must be equal-length and non-empty")
    c0, b0 = clients[0], bandwidth[0]
    if c0 <= 0 or b0 <= 0:
        raise ValueError("baseline point must be positive")
    return [
        (b / b0) / (c / c0) for c, b in zip(clients, bandwidth)
    ]


def speedup_series(
    clients: Sequence[int], bandwidth: Sequence[float]
) -> List[float]:
    """BW(c)/BW(first) for each point."""
    if not clients or len(clients) != len(bandwidth):
        raise ValueError("series must be equal-length and non-empty")
    b0 = bandwidth[0]
    if b0 <= 0:
        raise ValueError("baseline bandwidth must be positive")
    return [b / b0 for b in bandwidth]


def crossover_points(
    xs: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> List[Tuple[float, float]]:
    """x positions where series A and B cross (linear interpolation).

    Useful for "where does architecture A start beating B" questions.
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("series must be equal length")
    out: List[Tuple[float, float]] = []
    for i in range(1, len(xs)):
        d0 = series_a[i - 1] - series_b[i - 1]
        d1 = series_a[i] - series_b[i]
        if d0 == 0:
            continue
        if d0 * d1 < 0:
            frac = d0 / (d0 - d1)
            x = xs[i - 1] + frac * (xs[i] - xs[i - 1])
            y = series_a[i - 1] + frac * (series_a[i] - series_a[i - 1])
            out.append((x, y))
    return out


def summarize_table3(
    results: Dict[str, Dict[int, float]], endpoints: Tuple[int, int] = (1, 12)
) -> Dict[str, Tuple[float, float, float]]:
    """Build Table 3 rows from {arch: {clients: aggregate MB/s}}.

    Returns {arch: (bw@1, bw@N, improvement)}.
    """
    lo, hi = endpoints
    out = {}
    for arch, series in results.items():
        if lo not in series or hi not in series:
            raise ValueError(f"{arch}: missing endpoint measurements")
        out[arch] = (
            series[lo],
            series[hi],
            improvement_factor(series[lo], series[hi]),
        )
    return out

"""ASCII reporting helpers used by the benchmark harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render {name: values} against a shared x axis as a table."""
    headers = [x_label] + list(series)
    rows: List[List] = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            vals = series[name]
            row.append(vals[i] if i < len(vals) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_sparkline(values: Sequence[float], width: int = 40) -> str:
    """A crude one-line bar rendering (for quick terminal inspection)."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    out = []
    for v in values[:width]:
        idx = int((v - lo) / span * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)

"""Analytical models and reporting: Table 2, scalability, ASCII tables."""

from repro.analysis.bottleneck import (
    ResourceUsage,
    bottleneck,
    resource_usage,
    usage_table,
)
from repro.analysis.peak import PeakModel, peak_table, FORMULAS
from repro.analysis.scalability import (
    improvement_factor,
    scaling_efficiency,
    speedup_series,
)
from repro.analysis.report import render_series, render_table

__all__ = [
    "FORMULAS",
    "PeakModel",
    "ResourceUsage",
    "bottleneck",
    "resource_usage",
    "usage_table",
    "improvement_factor",
    "peak_table",
    "render_series",
    "render_table",
    "scaling_efficiency",
    "speedup_series",
]

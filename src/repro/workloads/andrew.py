"""The Andrew benchmark (Howard et al. 1988) — the paper's Fig. 6.

Five phases over a small source tree, per client, with phase barriers:

1. **MakeDir** — recreate the directory skeleton;
2. **Copy**    — copy every source file into the client's tree;
3. **ScanDir** — recursively list directories and stat every file;
4. **ReadAll** — read every copied file;
5. **Make**    — "compile": read each source, burn CPU, emit an object
   file, then link everything into one binary.

The paper runs it with up to 32 concurrent clients (wrapping onto the
12 nodes) on each of NFS, RAID-5, RAID-10, and RAID-x and reports
per-phase elapsed times; the RAID-5 Copy phase degrades fastest with
clients because the benchmark's files are small (the small-write
problem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fs import FileSystem, FsConfig
from repro.sim.sync import Barrier
from repro.units import KB

#: Classic MAB file-size flavour: many small sources, a few bigger ones.
DEFAULT_SIZES = (1, 2, 2, 3, 4, 6, 8, 12, 16, 24)  # KB, cycled per file


@dataclass(frozen=True)
class AndrewConfig:
    """Shape of the source tree and the compile cost model."""

    n_dirs: int = 5
    files_per_dir: int = 4
    file_sizes_kb: Tuple[int, ...] = DEFAULT_SIZES
    #: CPU seconds per KB of source in the Make phase (PII/400-class).
    compile_cpu_s_per_kb: float = 0.004
    #: Object file size as a fraction of its source.
    object_fraction: float = 0.7

    def file_size(self, dir_idx: int, file_idx: int) -> int:
        sizes = self.file_sizes_kb
        return sizes[(dir_idx * self.files_per_dir + file_idx) % len(sizes)] * KB

    @property
    def n_files(self) -> int:
        return self.n_dirs * self.files_per_dir

    @property
    def tree_bytes(self) -> int:
        return sum(
            self.file_size(d, f)
            for d in range(self.n_dirs)
            for f in range(self.files_per_dir)
        )


@dataclass
class AndrewResult:
    """Per-phase elapsed times (seconds, max across clients)."""

    clients: int
    phase_times: Dict[str, float] = field(default_factory=dict)
    cache_hit_rate: float = 0.0
    fs_ops: Dict[str, int] = field(default_factory=dict)

    PHASES = ("MakeDir", "Copy", "ScanDir", "ReadAll", "Make")

    @property
    def total(self) -> float:
        return sum(self.phase_times.values())

    def __str__(self) -> str:  # pragma: no cover - convenience
        per = "  ".join(
            f"{k}={v:.2f}s" for k, v in self.phase_times.items()
        )
        return f"Andrew x{self.clients}: {per}  total={self.total:.2f}s"


class AndrewBenchmark:
    """Run the five-phase Andrew benchmark with N concurrent clients."""

    def __init__(
        self,
        cluster,
        clients: int,
        config: Optional[AndrewConfig] = None,
        fs_config: Optional[FsConfig] = None,
    ):
        if clients < 1:
            raise ValueError("need at least one client")
        self.cluster = cluster
        self.env = cluster.env
        self.clients = clients
        self.config = config or AndrewConfig()
        self.fs = FileSystem(cluster, fs_config)
        self._phase_start: Dict[str, float] = {}
        self._phase_end: Dict[str, float] = {}

    # -- paths ------------------------------------------------------------
    @staticmethod
    def src_dir(d: int) -> str:
        return f"/src/d{d}"

    @staticmethod
    def src_file(d: int, f: int) -> str:
        return f"/src/d{d}/f{f}.c"

    def work_root(self, client: int) -> str:
        return f"/work{client}"

    def node_of_client(self, client: int) -> int:
        from repro.workloads.base import client_node

        return client_node(self.cluster, client)

    # -- source tree (untimed) -----------------------------------------------
    def _build_source_tree(self):
        cfg = self.config
        fs = self.fs
        yield from fs.mkdir(0, "/src")
        for d in range(cfg.n_dirs):
            yield from fs.mkdir(0, self.src_dir(d))
            for f in range(cfg.files_per_dir):
                path = self.src_file(d, f)
                yield from fs.create(0, path)
                yield from fs.write_file(0, path, cfg.file_size(d, f))

    # -- phases ---------------------------------------------------------------
    def _phase_makedir(self, client: int):
        node = self.node_of_client(client)
        root = self.work_root(client)
        yield from self.fs.mkdir(node, root)
        for d in range(self.config.n_dirs):
            yield from self.fs.mkdir(node, f"{root}/d{d}")

    def _phase_copy(self, client: int):
        cfg = self.config
        node = self.node_of_client(client)
        root = self.work_root(client)
        for d in range(cfg.n_dirs):
            for f in range(cfg.files_per_dir):
                size = yield from self.fs.read_file(node, self.src_file(d, f))
                dst = f"{root}/d{d}/f{f}.c"
                yield from self.fs.create(node, dst)
                yield from self.fs.write_file(node, dst, size)

    def _phase_scandir(self, client: int):
        cfg = self.config
        node = self.node_of_client(client)
        root = self.work_root(client)
        yield from self.fs.readdir(node, root)
        for d in range(cfg.n_dirs):
            names = yield from self.fs.readdir(node, f"{root}/d{d}")
            for name in names:
                yield from self.fs.stat(node, f"{root}/d{d}/{name}")

    def _phase_readall(self, client: int):
        cfg = self.config
        node = self.node_of_client(client)
        root = self.work_root(client)
        for d in range(cfg.n_dirs):
            for f in range(cfg.files_per_dir):
                yield from self.fs.read_file(node, f"{root}/d{d}/f{f}.c")

    def _phase_make(self, client: int):
        cfg = self.config
        node = self.node_of_client(client)
        cpu = self.cluster.nodes[node].cpu
        root = self.work_root(client)
        objects: List[Tuple[str, int]] = []
        for d in range(cfg.n_dirs):
            for f in range(cfg.files_per_dir):
                src = f"{root}/d{d}/f{f}.c"
                size = yield from self.fs.read_file(node, src)
                yield cpu.busy(cfg.compile_cpu_s_per_kb * size / KB)
                obj = f"{root}/d{d}/f{f}.o"
                osize = max(1, int(size * cfg.object_fraction))
                yield from self.fs.create(node, obj)
                yield from self.fs.write_file(node, obj, osize)
                objects.append((obj, osize))
        # Link step: read every object, write the binary.
        total = 0
        for obj, osize in objects:
            yield from self.fs.read_file(node, obj)
            total += osize
        exe = f"{root}/app"
        yield from self.fs.create(node, exe)
        yield from self.fs.write_file(node, exe, max(1, total // 2))

    PHASE_BODIES = {
        "MakeDir": _phase_makedir,
        "Copy": _phase_copy,
        "ScanDir": _phase_scandir,
        "ReadAll": _phase_readall,
        "Make": _phase_make,
    }

    # -- driver ---------------------------------------------------------------
    def _client_proc(self, client: int, barrier: Barrier,
                     ends: Dict[str, List[float]]):
        for phase in AndrewResult.PHASES:
            yield barrier.wait()
            if client == 0:
                self._phase_start.setdefault(phase, self.env.now)
            body = self.PHASE_BODIES[phase]
            yield from body(self, client)
            ends[phase].append(self.env.now)

    def run(self) -> AndrewResult:
        env = self.env
        env.run(env.process(self._build_source_tree()))
        if self.cluster.storage is not None:
            env.run(env.process(self.cluster.storage.drain()))
        barrier = Barrier(env, self.clients)
        ends: Dict[str, List[float]] = {p: [] for p in AndrewResult.PHASES}
        procs = [
            env.process(self._client_proc(c, barrier, ends))
            for c in range(self.clients)
        ]
        env.run(env.all_of(procs))
        result = AndrewResult(clients=self.clients)
        for phase in AndrewResult.PHASES:
            start = self._phase_start[phase]
            result.phase_times[phase] = max(ends[phase]) - start
        result.cache_hit_rate = self.fs.dev.cache_hit_rate()
        result.fs_ops = self.fs.op_counts()
        return result

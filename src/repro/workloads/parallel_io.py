"""Parallel I/O workload — the paper's Fig. 5 / Table 3 methodology.

"For large read and large write, each client accesses a large file of
2 MB long, striping across all disks in the array. […] All files are
uncached and each client only reads its own private file.  All reads
are performed simultaneously using the MPI_Barrier() command.  In case
of small read or small write, 32 KB data is accessed in one block of
the stripe group."
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.units import KiB, MB
from repro.workloads.base import (
    DEFAULT_FILE_SPACING,
    ClientWorkload,
    chunked_io,
)


class ParallelIOWorkload(ClientWorkload):
    """Barrier-synchronized private-file I/O on the cluster storage."""

    name = "parallel_io"

    def __init__(
        self,
        cluster,
        clients: int,
        op: str = "read",
        size: int = 2 * MB,
        chunk: Optional[int] = None,
        queue_depth: int = 4,
        file_spacing: int = DEFAULT_FILE_SPACING,
        prepare_files: bool = True,
        repeats: int = 1,
    ):
        """``repeats`` re-issues the access on ``repeats`` consecutive
        regions of the private file — the small-I/O measurements repeat
        the single-block access and report the average, as a timed
        one-shot 32 KB op would mostly measure the initial head seek."""
        super().__init__(cluster, clients)
        if op not in ("read", "write"):
            raise ValueError(f"bad op {op!r}")
        if repeats < 1:
            raise ValueError("repeats must be positive")
        self.op = op
        self.size = int(size)
        self.chunk = chunk or cluster.storage.block_size
        self.queue_depth = queue_depth
        self.file_spacing = file_spacing
        self.prepare_files = prepare_files
        self.repeats = repeats
        self.name = f"parallel_{op}_{self.size // 1000}KB"
        if repeats * size > file_spacing:
            raise ValueError("repeats*size exceeds the per-client file span")
        last_end = self.file_offset(clients - 1) + self.size * self.repeats
        if last_end > cluster.storage.capacity:
            raise ValueError(
                "client files exceed the virtual disk; reduce clients or "
                "spacing"
            )

    def file_offset(self, client: int) -> int:
        """Start of a client's private file.

        Files are block-aligned (a real file system allocates whole
        blocks), spaced by ``file_spacing`` rounded up to whole
        array-width rows, plus a one-block stagger per client so client
        i's first block lands on disk i (single-block accesses spread
        over the array).

        On RAID-x the row spacing is additionally bumped until it is
        coprime with the mirror-group period ``n·(n-1)``: an exactly
        resonant spacing would map every client's image extents onto the
        same few image disks — a simulation artifact (real file systems
        place files irregularly) that concentrates the background mirror
        traffic and collapses write bandwidth.
        """
        import math

        bs = self.cluster.storage.block_size
        width = max(1, self.cluster.n_disks)
        spacing_blocks = -(-self.file_spacing // bs)
        rows = -(-spacing_blocks // width)
        layout = getattr(self.cluster.storage, "layout", None)
        n = getattr(layout, "n", None)
        if n is not None and n >= 3:
            while math.gcd(rows, n * (n - 1)) != 1:
                rows += 1
        return (client * rows * width + client) * bs

    def prepare(self):
        """Create the private files (untimed), warming server-side state."""
        if not self.prepare_files:
            return
        events = []
        for c in range(self.clients):
            node = self.node_of_client(c)
            events.append(
                self.cluster.storage.submit(
                    node, "write", self.file_offset(c),
                    self.size * self.repeats,
                )
            )
        yield self.env.all_of(events)

    def client_body(self, client: int):
        node = self.node_of_client(client)
        base = self.file_offset(client)
        for rep in range(self.repeats):
            yield from chunked_io(
                self.cluster.storage,
                node,
                self.op,
                base + rep * self.size,
                self.size,
                chunk=self.chunk,
                queue_depth=self.queue_depth,
            )

    def bytes_per_client(self) -> float:
        return float(self.size * self.repeats)

    def extras(self) -> Dict[str, float]:
        st = self.cluster.transport.stats
        return {
            "remote_block_ops": float(st.remote_block_ops),
            "local_block_ops": float(st.local_block_ops),
            "disk_utilization": self.cluster.disk_utilization(),
        }


def large_read(cluster, clients: int, **kw) -> ParallelIOWorkload:
    """Fig. 5(a): 2 MB reads per client."""
    return ParallelIOWorkload(cluster, clients, op="read", size=2 * MB, **kw)


def large_write(cluster, clients: int, **kw) -> ParallelIOWorkload:
    """Fig. 5(c): 2 MB writes per client."""
    return ParallelIOWorkload(cluster, clients, op="write", size=2 * MB, **kw)


def small_read(cluster, clients: int, **kw) -> ParallelIOWorkload:
    """Fig. 5(b): one 32 KB block per client (averaged over repeats)."""
    kw.setdefault("repeats", 8)
    return ParallelIOWorkload(
        cluster, clients, op="read", size=32 * KiB, **kw
    )


def small_write(cluster, clients: int, **kw) -> ParallelIOWorkload:
    """Fig. 5(d): one 32 KB block per client.

    One-shot on purpose: the client-perceived latency of a single small
    write is exactly where OSM's background mirroring pays off; repeated
    sustained writes converge to RAID-10-like bandwidth because the
    images must eventually reach the disks (see benchmark A1)."""
    return ParallelIOWorkload(
        cluster, clients, op="write", size=32 * KiB, **kw
    )

"""Workload base machinery: barrier-synchronized clients and results.

Clients mimic the paper's methodology: MPI processes that synchronize
with ``MPI_Barrier()`` and then issue I/O through ``read()``/``write()``
loops — modeled as block-sized sub-requests with a bounded number in
flight per client (``queue_depth``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.sync import Barrier
from repro.units import MB


@dataclass
class WorkloadResult:
    """Outcome of one timed workload run."""

    name: str
    clients: int
    bytes_per_client: float
    started_at: float
    finished_at: float
    per_client_finish: Dict[int, float] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def total_bytes(self) -> float:
        return self.bytes_per_client * self.clients

    @property
    def aggregate_bandwidth_mb_s(self) -> float:
        if self.elapsed <= 0:
            return math.nan
        return self.total_bytes / 1e6 / self.elapsed

    @property
    def per_client_bandwidth_mb_s(self) -> float:
        return self.aggregate_bandwidth_mb_s / max(1, self.clients)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.name}: {self.clients} clients, "
            f"{self.aggregate_bandwidth_mb_s:.2f} MB/s aggregate "
            f"in {self.elapsed:.3f}s"
        )


class ClientWorkload:
    """Base class: N clients on the cluster, barrier start, timed run.

    Subclasses implement :meth:`client_body` (a process generator for one
    client, run after the start barrier).
    """

    name = "workload"

    def __init__(self, cluster, clients: int):
        if clients < 1:
            raise ValueError("need at least one client")
        self.cluster = cluster
        self.env = cluster.env
        self.clients = clients
        self._finish: Dict[int, float] = {}

    # -- hooks -------------------------------------------------------------
    def node_of_client(self, client: int) -> int:
        """Clients beyond the node count wrap around (paper runs up to
        32 Andrew clients on 12 nodes)."""
        return client_node(self.cluster, client)

    def prepare(self):
        """Untimed setup phase (process generator); default no-op."""
        return
        yield  # pragma: no cover

    def client_body(self, client: int):
        """The timed work of one client (process generator)."""
        raise NotImplementedError
        yield  # pragma: no cover

    def bytes_per_client(self) -> float:
        """Logical bytes each client moves in the timed phase."""
        return 0.0

    def extras(self) -> Dict[str, float]:
        """Extra metrics for the result (override freely)."""
        return {}

    # -- driver -----------------------------------------------------------
    def run(self) -> WorkloadResult:
        """Prepare, run all clients to completion, return the result."""
        env = self.env
        # Untimed preparation (file creation, cache warm-up, drain).
        env.run(env.process(self._prepare_wrapper()))
        started = env.now
        barrier = Barrier(env, self.clients)
        procs = [
            env.process(self._client_wrapper(i, barrier))
            for i in range(self.clients)
        ]
        env.run(env.all_of(procs))
        return WorkloadResult(
            name=self.name,
            clients=self.clients,
            bytes_per_client=self.bytes_per_client(),
            started_at=started,
            finished_at=max(self._finish.values(), default=env.now),
            per_client_finish=dict(self._finish),
            extras=self.extras(),
        )

    def _prepare_wrapper(self):
        yield from self.prepare()
        storage = self.cluster.storage
        if storage is not None:
            yield from storage.drain()

    def _client_wrapper(self, client: int, barrier: Barrier):
        yield barrier.wait()
        yield from self.client_body(client)
        self._finish[client] = self.env.now


def chunked_io(storage, client: int, op: str, offset: int, nbytes: int,
               chunk: int, queue_depth: int):
    """Process generator: a ``read()``/``write()`` syscall loop.

    Issues ``chunk``-sized requests keeping at most ``queue_depth`` in
    flight — depth 1 is a strictly sequential loop; larger depths model
    kernel read-ahead / write-behind.
    """
    if chunk <= 0 or queue_depth < 1:
        raise ValueError("chunk and queue_depth must be positive")
    env = storage.env
    inflight: List = []
    pos = offset
    end = offset + nbytes
    while pos < end:
        take = min(chunk, end - pos)
        inflight.append(storage.submit(client, op, pos, take))
        pos += take
        if len(inflight) >= queue_depth:
            # Wait for the oldest request (FIFO completion window).
            first = inflight.pop(0)
            yield first
    for ev in inflight:
        yield ev


def client_node(cluster, client: int) -> int:
    """Map a client index to a cluster node.

    Clients wrap around the nodes; under NFS the server node is excluded
    (the paper's NFS runs used a dedicated server, so client processes
    never short-circuit the RPC path via loopback).
    """
    from repro.cluster.systems import NfsSystem

    storage = cluster.storage
    n = cluster.n_nodes
    if isinstance(storage, NfsSystem) and n > 1:
        pool = [i for i in range(n) if i != storage.server]
        return pool[client % len(pool)]
    return client % n


#: Default spacing between per-client private files on the virtual disk.
DEFAULT_FILE_SPACING = 8 * MB

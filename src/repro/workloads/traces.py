"""I/O trace record / replay.

A trace is a list of (time, client, op, offset, nbytes) records.  The
recorder wraps a storage system to capture whatever a workload does; the
replayer re-issues a trace against any other architecture — the standard
way to compare storage systems on identical op streams.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class TraceOp:
    """One traced logical operation."""

    time: float
    client: int
    op: str
    offset: int
    nbytes: int

    def validate(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad traced op {self.op!r}")
        if self.time < 0 or self.offset < 0 or self.nbytes < 0:
            raise ValueError("negative field in trace record")


class TraceRecorder:
    """Wraps a storage system; records every submit() it forwards."""

    def __init__(self, storage):
        self.storage = storage
        self.ops: List[TraceOp] = []

    # Pass-through interface matching StorageSystem.
    @property
    def env(self):
        return self.storage.env

    @property
    def capacity(self):
        return self.storage.capacity

    @property
    def block_size(self):
        return self.storage.block_size

    def submit(self, client: int, op: str, offset: int, nbytes: int):
        self.ops.append(
            TraceOp(self.storage.env.now, client, op, offset, nbytes)
        )
        return self.storage.submit(client, op, offset, nbytes)

    def drain(self):
        return self.storage.drain()

    # -- serialization -----------------------------------------------------
    def dumps(self) -> str:
        """Serialize the trace as CSV text."""
        buf = io.StringIO()
        w = csv.writer(buf)
        w.writerow(["time", "client", "op", "offset", "nbytes"])
        for t in self.ops:
            w.writerow([f"{t.time:.9f}", t.client, t.op, t.offset, t.nbytes])
        return buf.getvalue()


def loads(text: str) -> List[TraceOp]:
    """Parse a CSV trace produced by :meth:`TraceRecorder.dumps`."""
    out = []
    reader = csv.DictReader(io.StringIO(text))
    for row in reader:
        op = TraceOp(
            time=float(row["time"]),
            client=int(row["client"]),
            op=row["op"],
            offset=int(row["offset"]),
            nbytes=int(row["nbytes"]),
        )
        op.validate()
        out.append(op)
    return out


def replay_trace(cluster, ops: Iterable[TraceOp], preserve_timing: bool = True):
    """Replay a trace on a cluster; returns (elapsed, completed_ops).

    With ``preserve_timing`` the replayer honours the recorded issue
    times (open-loop); otherwise ops are issued as fast as dependencies
    allow, per client in order (closed-loop).
    """
    env = cluster.env
    storage = cluster.storage
    ops = sorted(ops, key=lambda o: o.time)
    start = env.now
    completed = [0]

    def open_loop():
        events = []
        t0 = ops[0].time if ops else 0.0
        for op in ops:
            delay = (op.time - t0) - (env.now - start)
            if preserve_timing and delay > 0:
                yield float(delay)
            ev = storage.submit(op.client, op.op, op.offset, op.nbytes)

            def _count(_e):
                completed[0] += 1

            ev.callbacks.append(_count)
            events.append(ev)
        if events:
            yield env.all_of(events)

    env.run(env.process(open_loop()))
    return env.now - start, completed[0]

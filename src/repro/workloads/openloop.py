"""Open-loop workload: arrival-process scenarios, response-time stats.

The barrier workloads (Fig. 5) measure *bandwidth*; this one measures
*latency under offered load*: requests arrive at rate λ regardless of
completions (open loop), each timed individually.  Sweeping λ produces
the classic response-time hockey-stick and locates each architecture's
saturation point.

Built for million-request scale sweeps:

* the whole arrival schedule (times, ops, offsets, clients) is
  precomputed with vectorized numpy before the simulation starts — the
  hot loop is one driver process issuing pre-baked requests;
* completions are recorded by a small callback object per request
  instead of a timing process per request;
* latencies land in a :class:`~repro.obs.metrics.LogHistogram` — memory
  stays O(buckets) at any request count.  ``exact_latencies=True``
  additionally keeps the raw list for small runs.

Three first-class arrival scenarios (``scenario=``):

``poisson``
    Homogeneous Poisson arrivals, uniform random blocks (the classic
    open-loop baseline).
``zipf``
    Poisson arrivals; block choice follows a Zipf(``zipf_s``) hot-spot
    over the region's block space (a seeded permutation scatters the
    hot blocks across disks).
``diurnal``
    Uniform blocks, but the arrival rate ramps sinusoidally between
    ``rate·(1±diurnal_amplitude)`` over ``diurnal_period_s`` (default:
    one full cycle per window), via thinning of a homogeneous stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs.metrics import LogHistogram
from repro.units import KiB
from repro.workloads.base import client_node

_SCENARIOS = ("poisson", "zipf", "diurnal")


@dataclass
class LatencyResult:
    """Response-time statistics from one open-loop run."""

    offered_ops_per_s: float
    completed: int
    #: Total time including draining the backlog after arrivals stop.
    duration_s: float
    #: The arrival window itself.
    window_s: float = 0.0
    #: Requests that errored (planner/typed failures); not timed.
    failed: int = 0
    #: Log-bucketed latency distribution (always populated).
    histogram: LogHistogram = field(default_factory=LogHistogram)
    #: Raw per-request latencies — only with ``exact_latencies=True``.
    latencies: Optional[List[float]] = None

    @property
    def achieved_ops_per_s(self) -> float:
        if self.duration_s <= 0:
            return float("nan")
        return self.completed / self.duration_s

    @property
    def drain_s(self) -> float:
        """How long completions kept trickling after the last arrival."""
        return max(0.0, self.duration_s - self.window_s)

    def mean_latency(self) -> float:
        return self.histogram.mean  # exact: moments tracked alongside

    def p95_latency(self) -> float:
        return self.histogram.percentile(95)

    def p99_latency(self) -> float:
        return self.histogram.percentile(99)

    @property
    def saturated(self) -> bool:
        """True when the backlog at window end took a substantial extra
        drain — i.e. completions fell behind arrivals."""
        if self.window_s <= 0:
            return False
        return self.drain_s > 0.25 * self.window_s


class _Completion:
    """Per-request completion hook: time it, count it, defuse failures."""

    __slots__ = ("workload", "start")

    def __init__(self, workload: "OpenLoopWorkload", start: float):
        self.workload = workload
        self.start = start

    def __call__(self, event) -> None:
        wl = self.workload
        if not event._ok:
            event.defused()
            wl._failed += 1
        else:
            lat = wl.env.now - self.start
            wl._hist.add(lat)
            if wl._exact is not None:
                wl._exact.append(lat)
            wl._completed += 1
        if wl._done is not None and wl._completed + wl._failed >= wl._total:
            wl._done.succeed()


class OpenLoopWorkload:
    """A seeded open-loop request stream against the cluster storage.

    Requests are ``op_size`` accesses at block-aligned offsets within
    ``region_bytes``.  The run length is either a time window
    (``duration_s``, arrivals strictly inside it) or an exact request
    count (``n_requests``); ``placement`` maps each request to a client
    node — ``"roundrobin"`` cycles the nodes, ``"local"`` picks the
    owner of the target block's primary disk (every request is a local
    hit, the regime the node fast-forward collapses).
    """

    def __init__(
        self,
        cluster,
        rate_ops_per_s: float,
        duration_s: Optional[float] = 1.0,
        op: str = "write",
        op_size: int = 32 * KiB,
        read_fraction: Optional[float] = None,
        region_bytes: Optional[int] = None,
        seed: int = 42,
        n_requests: Optional[int] = None,
        scenario: str = "poisson",
        zipf_s: float = 1.2,
        diurnal_amplitude: float = 0.8,
        diurnal_period_s: Optional[float] = None,
        placement: str = "roundrobin",
        exact_latencies: bool = False,
    ):
        if rate_ops_per_s <= 0:
            raise ValueError("rate must be positive")
        if n_requests is None:
            if duration_s is None or duration_s <= 0:
                raise ValueError("rate and duration must be positive")
        elif n_requests < 1:
            raise ValueError("n_requests must be positive")
        if op not in ("read", "write", "mixed"):
            raise ValueError(f"bad op {op!r}")
        if scenario not in _SCENARIOS:
            raise ValueError(
                f"bad scenario {scenario!r}; choose from {_SCENARIOS}"
            )
        if placement not in ("roundrobin", "local"):
            raise ValueError(f"bad placement {placement!r}")
        if not 0.0 <= diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be within [0, 1]")
        if op == "mixed" and read_fraction is None:
            read_fraction = 0.5
        self.cluster = cluster
        self.env = cluster.env
        self.rate = rate_ops_per_s
        self.duration = duration_s if n_requests is None else None
        self.n_requests = n_requests
        self.op = op
        self.op_size = op_size
        self.read_fraction = read_fraction
        self.scenario = scenario
        self.zipf_s = zipf_s
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period_s
        self.placement = placement
        storage = cluster.storage
        region = region_bytes or min(storage.capacity, 512_000_000)
        self.n_blocks = max(1, region // storage.block_size - 1)
        layout = getattr(storage, "layout", None)
        if layout is not None:
            # The logical address space may end mid-block on the last
            # disk; the layout's block count is the true upper bound.
            self.n_blocks = min(self.n_blocks, layout.data_blocks)
        self._rng = np.random.default_rng(seed)
        self._hist = LogHistogram("openloop_latency")
        self._exact: Optional[List[float]] = [] if exact_latencies else None
        self._completed = 0
        self._failed = 0
        self._total = 0
        self._done = None

    # -- schedule generation (vectorized, before the sim runs) -------------
    def _arrival_times(self) -> np.ndarray:
        """Request arrival offsets from the run start, ascending."""
        rng = self._rng
        rate = self.rate
        if self.scenario != "diurnal":
            if self.n_requests is not None:
                return np.cumsum(
                    rng.exponential(1.0 / rate, self.n_requests)
                )
            times = np.empty(0)
            chunk = max(64, int(rate * self.duration * 1.2))
            last = 0.0
            while last < self.duration:
                gaps = rng.exponential(1.0 / rate, chunk)
                new = last + np.cumsum(gaps)
                times = np.concatenate([times, new])
                last = float(times[-1])
            return times[times < self.duration]
        # Diurnal ramp: thin a homogeneous stream at the peak rate.
        amp = self.diurnal_amplitude
        peak = rate * (1.0 + amp)
        if self.n_requests is not None:
            period = self.diurnal_period or (self.n_requests / rate)
            accepted = np.empty(0)
            last = 0.0
            while len(accepted) < self.n_requests:
                gaps = rng.exponential(
                    1.0 / peak, max(64, self.n_requests)
                )
                cand = last + np.cumsum(gaps)
                last = float(cand[-1])
                lam = rate * (
                    1.0 + amp * np.sin(2.0 * np.pi * cand / period)
                )
                keep = rng.random(len(cand)) * peak < lam
                accepted = np.concatenate([accepted, cand[keep]])
            return accepted[: self.n_requests]
        period = self.diurnal_period or self.duration
        times = np.empty(0)
        chunk = max(64, int(peak * self.duration * 1.2))
        last = 0.0
        while last < self.duration:
            gaps = rng.exponential(1.0 / peak, chunk)
            new = last + np.cumsum(gaps)
            times = np.concatenate([times, new])
            last = float(times[-1])
        times = times[times < self.duration]
        lam = rate * (1.0 + amp * np.sin(2.0 * np.pi * times / period))
        return times[self._rng.random(len(times)) * peak < lam]

    def _blocks(self, n: int) -> np.ndarray:
        """Target block per request (uniform or Zipf hot-spot)."""
        rng = self._rng
        if self.scenario != "zipf":
            return rng.integers(0, self.n_blocks, size=n)
        # Zipf over ranks, then a seeded permutation scatters the hot
        # ranks across the block space (and hence across disks).
        weights = 1.0 / np.arange(1, self.n_blocks + 1) ** self.zipf_s
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        ranks = np.searchsorted(cdf, rng.random(n), side="left")
        return rng.permutation(self.n_blocks)[ranks]

    def _generate(self):
        """Bake the full request schedule as plain Python lists."""
        storage = self.cluster.storage
        bs = storage.block_size
        times = self._arrival_times()
        n = len(times)
        blocks = self._blocks(n)
        if self.op == "mixed":
            is_read = self._rng.random(n) < self.read_fraction
            ops = ["read" if r else "write" for r in is_read]
        else:
            ops = [self.op] * n
        if self.placement == "local":
            n_nodes = self.cluster.n_nodes
            layout = getattr(storage, "layout", None)
            if layout is None:
                raise ValueError(
                    "placement='local' needs a block layout "
                    "(not available on this storage system)"
                )
            owners = [
                layout.data_location(b).disk % n_nodes
                for b in range(self.n_blocks)
            ]
            clients = [owners[b] for b in blocks.tolist()]
        else:
            clients = [
                client_node(self.cluster, i) for i in range(n)
            ]
        offsets = (blocks * bs).tolist()
        return times.tolist(), ops, offsets, clients

    # -- driver ------------------------------------------------------------
    def _driver(self, times, ops, offsets, clients):
        env = self.env
        base = env.now
        submit = self.cluster.storage.submit
        nbytes = min(self.op_size, self.cluster.storage.block_size)
        for i in range(len(times)):
            delay = base + times[i] - env.now
            if delay > 0:
                yield delay
            ev = submit(clients[i], ops[i], offsets[i], nbytes)
            ev.callbacks.append(_Completion(self, env.now))
        if self._completed + self._failed < self._total:
            self._done = env.event()
            yield self._done
            self._done = None

    def run(self) -> LatencyResult:
        """Issue the precomputed schedule; wait for stragglers."""
        start = self.env.now
        times, ops, offsets, clients = self._generate()
        self._total = len(times)
        if self._total:
            self.env.run(self.env.process(
                self._driver(times, ops, offsets, clients)
            ))
        window = (
            self.duration
            if self.duration is not None
            else (times[-1] if times else 0.0)
        )
        return LatencyResult(
            offered_ops_per_s=self.rate,
            completed=self._completed,
            duration_s=self.env.now - start,
            window_s=window,
            failed=self._failed,
            histogram=self._hist,
            latencies=list(self._exact) if self._exact is not None else None,
        )

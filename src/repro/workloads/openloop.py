"""Open-loop workload: Poisson arrivals, response-time measurement.

The barrier workloads (Fig. 5) measure *bandwidth*; this one measures
*latency under offered load*: requests arrive at rate λ regardless of
completions (open loop), each timed individually.  Sweeping λ produces
the classic response-time hockey-stick and locates each architecture's
saturation point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.units import KiB
from repro.workloads.base import client_node


@dataclass
class LatencyResult:
    """Response-time statistics from one open-loop run."""

    offered_ops_per_s: float
    completed: int
    #: Total time including draining the backlog after arrivals stop.
    duration_s: float
    #: The arrival window itself.
    window_s: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def achieved_ops_per_s(self) -> float:
        if self.duration_s <= 0:
            return float("nan")
        return self.completed / self.duration_s

    @property
    def drain_s(self) -> float:
        """How long completions kept trickling after the last arrival."""
        return max(0.0, self.duration_s - self.window_s)

    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float(
            "nan"
        )

    def p95_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return float(np.percentile(self.latencies, 95))

    @property
    def saturated(self) -> bool:
        """True when the backlog at window end took a substantial extra
        drain — i.e. completions fell behind arrivals."""
        if self.window_s <= 0:
            return False
        return self.drain_s > 0.25 * self.window_s


class OpenLoopWorkload:
    """Poisson request stream against the cluster storage.

    Arrivals are assigned round-robin to client nodes; each request is
    an ``op_size`` access at a random block-aligned offset within
    ``region_bytes``.
    """

    def __init__(
        self,
        cluster,
        rate_ops_per_s: float,
        duration_s: float = 1.0,
        op: str = "write",
        op_size: int = 32 * KiB,
        read_fraction: Optional[float] = None,
        region_bytes: Optional[int] = None,
        seed: int = 42,
    ):
        if rate_ops_per_s <= 0 or duration_s <= 0:
            raise ValueError("rate and duration must be positive")
        if op not in ("read", "write", "mixed"):
            raise ValueError(f"bad op {op!r}")
        if op == "mixed" and read_fraction is None:
            read_fraction = 0.5
        self.cluster = cluster
        self.env = cluster.env
        self.rate = rate_ops_per_s
        self.duration = duration_s
        self.op = op
        self.op_size = op_size
        self.read_fraction = read_fraction
        storage = cluster.storage
        region = region_bytes or min(storage.capacity, 512_000_000)
        self.n_blocks = max(1, region // storage.block_size - 1)
        self._rng = np.random.default_rng(seed)
        self._latencies: List[float] = []
        self._completed = [0]

    def _one(self, op: str, offset: int):
        start = self.env.now
        yield self.cluster.storage.submit(
            client_node(self.cluster, self._completed[0]),
            op,
            offset,
            min(self.op_size, self.cluster.storage.block_size),
        )
        self._latencies.append(self.env.now - start)
        self._completed[0] += 1

    def _arrivals(self):
        bs = self.cluster.storage.block_size
        end = self.env.now + self.duration
        spawned = []
        while self.env.now < end:
            yield float(self._rng.exponential(1.0 / self.rate))
            if self.env.now >= end:
                break
            if self.op == "mixed":
                op = (
                    "read"
                    if self._rng.random() < self.read_fraction
                    else "write"
                )
            else:
                op = self.op
            offset = int(self._rng.integers(0, self.n_blocks)) * bs
            spawned.append(self.env.process(self._one(op, offset)))
        if spawned:
            yield self.env.all_of(spawned)

    def run(self) -> LatencyResult:
        """Generate arrivals for ``duration_s``; wait for stragglers."""
        start = self.env.now
        self.env.run(self.env.process(self._arrivals()))
        return LatencyResult(
            offered_ops_per_s=self.rate,
            completed=self._completed[0],
            duration_s=self.env.now - start,
            window_s=self.duration,
            latencies=list(self._latencies),
        )

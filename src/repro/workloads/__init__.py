"""Workload generators: parallel I/O, Andrew benchmark, synthetic mixes."""

from repro.workloads.base import ClientWorkload, WorkloadResult
from repro.workloads.openloop import LatencyResult, OpenLoopWorkload
from repro.workloads.parallel_io import ParallelIOWorkload
from repro.workloads.synthetic import SyntheticWorkload, ZipfAccessPattern
from repro.workloads.traces import TraceOp, TraceRecorder, replay_trace

__all__ = [
    "ClientWorkload",
    "LatencyResult",
    "OpenLoopWorkload",
    "ParallelIOWorkload",
    "SyntheticWorkload",
    "TraceOp",
    "TraceRecorder",
    "WorkloadResult",
    "ZipfAccessPattern",
    "replay_trace",
]

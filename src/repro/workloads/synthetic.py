"""Synthetic mixed workloads: random access, read/write mixes, hotspots.

Not part of the paper's evaluation, but standard for a storage library:
used by integration tests and the extension examples.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.units import KiB
from repro.workloads.base import ClientWorkload


class ZipfAccessPattern:
    """Zipf-distributed block popularity over a region of the disk."""

    def __init__(
        self,
        n_blocks: int,
        theta: float = 0.99,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_blocks < 1:
            raise ValueError("need at least one block")
        if not 0 < theta:
            raise ValueError("theta must be positive")
        self.n_blocks = n_blocks
        self.theta = theta
        self._rng = rng or np.random.default_rng(0)
        ranks = np.arange(1, n_blocks + 1, dtype=float)
        weights = ranks ** (-theta)
        self._probs = weights / weights.sum()
        # Random rank->block mapping so hot blocks spread across disks.
        self._perm = self._rng.permutation(n_blocks)

    def next_block(self) -> int:
        rank = self._rng.choice(self.n_blocks, p=self._probs)
        return int(self._perm[rank])


class SyntheticWorkload(ClientWorkload):
    """Each client issues ``ops_per_client`` random block ops.

    ``read_fraction`` splits the mix; ``pattern`` may be "uniform" or
    "zipf".
    """

    name = "synthetic"

    def __init__(
        self,
        cluster,
        clients: int,
        ops_per_client: int = 64,
        op_size: int = 32 * KiB,
        read_fraction: float = 0.7,
        pattern: str = "uniform",
        zipf_theta: float = 0.99,
        region_bytes: Optional[int] = None,
    ):
        super().__init__(cluster, clients)
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.ops_per_client = ops_per_client
        self.op_size = op_size
        self.read_fraction = read_fraction
        self.pattern = pattern
        storage = cluster.storage
        region = region_bytes or min(storage.capacity, 256_000_000)
        self.n_blocks = max(1, region // storage.block_size - 1)
        self._rng = cluster.rand.stream("synthetic")
        if pattern == "zipf":
            self._zipf = ZipfAccessPattern(
                self.n_blocks, theta=zipf_theta, rng=self._rng
            )
        elif pattern == "uniform":
            self._zipf = None
        else:
            raise ValueError(f"unknown pattern {pattern!r}")
        self.reads_issued = 0
        self.writes_issued = 0

    def _next_block(self) -> int:
        if self._zipf is not None:
            return self._zipf.next_block()
        return int(self._rng.integers(0, self.n_blocks))

    def client_body(self, client: int):
        node = self.node_of_client(client)
        storage = self.cluster.storage
        bs = storage.block_size
        for _ in range(self.ops_per_client):
            block = self._next_block()
            op = (
                "read"
                if self._rng.random() < self.read_fraction
                else "write"
            )
            if op == "read":
                self.reads_issued += 1
            else:
                self.writes_issued += 1
            nbytes = min(self.op_size, bs)
            yield storage.submit(node, op, block * bs, nbytes)

    def bytes_per_client(self) -> float:
        return float(self.ops_per_client * min(self.op_size,
                                               self.cluster.storage.block_size))

    def extras(self) -> Dict[str, float]:
        return {
            "reads": float(self.reads_issued),
            "writes": float(self.writes_issued),
        }

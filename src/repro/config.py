"""Configuration dataclasses and the Trojans-cluster preset.

All hardware and protocol constants are concentrated here so that every
experiment runs the competing storage architectures on *identical*
simulated hardware — the property that makes relative comparisons
meaningful (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.units import KB, KiB, MB, MS, US


@dataclass(frozen=True)
class DiskParams:
    """A mechanical disk model, calibrated to a c.-1999 SCSI drive.

    The service-time model is ``seek(distance) + rotation + size/media_rate``
    for random access; sequential successors skip seek and rotation.
    """

    capacity_bytes: int = 10_000 * MB  # 10 GB, as on the Trojans nodes
    media_rate: float = 16 * MB  # sustained media transfer (B/s)
    avg_seek_s: float = 8.5 * MS
    track_to_track_seek_s: float = 1.0 * MS
    full_stroke_seek_s: float = 17.0 * MS
    rpm: float = 7200.0
    controller_overhead_s: float = 0.3 * MS
    #: Contiguous-LBA window treated as "sequential" (skips seek+rotation).
    sequential_window_bytes: int = 512 * KiB

    @property
    def avg_rotation_s(self) -> float:
        """Average rotational delay: half a revolution."""
        return 0.5 * 60.0 / self.rpm

    def validate(self) -> None:
        if self.capacity_bytes <= 0 or self.media_rate <= 0:
            raise ConfigurationError("disk capacity and rate must be positive")
        if self.full_stroke_seek_s < self.avg_seek_s:
            raise ConfigurationError("full-stroke seek below average seek")


@dataclass(frozen=True)
class NetworkParams:
    """Switched-Ethernet fabric model (per-port full duplex)."""

    link_rate: float = 12.5 * MB  # 100 Mbit/s per port
    switch_latency_s: float = 60 * US
    #: Aggregate switch backplane cap (None = non-blocking switch).
    backplane_rate: float | None = None
    #: Fixed per-message protocol CPU at each endpoint (interrupt, TCP).
    per_message_overhead_s: float = 120 * US
    #: Per-KB protocol CPU at each endpoint (checksums, copies).
    per_kb_overhead_s: float = 25 * US
    #: Maximum transfer unit — large messages are fragmented.
    mtu_bytes: int = 32 * KiB
    #: Incast goodput-collapse model (era TCP over Fast Ethernet): when
    #: more than ``incast_flow_threshold`` distinct senders have
    #: messages in flight toward one receive port, each RX transfer
    #: stretches by ``incast_penalty`` per excess flow, capped at
    #: ``incast_max_stretch`` (goodput floors, it does not hit zero).
    #: This models the switch-buffer overflow / TCP retransmission
    #: contention the paper (and Vaidya's staggering argument) rest on.
    #: None disables.
    incast_flow_threshold: int | None = 6
    incast_penalty: float = 0.15
    incast_max_stretch: float = 1.5

    def message_cpu_cost(self, nbytes: float) -> float:
        """Endpoint CPU time to process one message of ``nbytes``."""
        return self.per_message_overhead_s + self.per_kb_overhead_s * (
            nbytes / KB
        )

    def validate(self) -> None:
        if self.link_rate <= 0:
            raise ConfigurationError("link rate must be positive")
        if self.mtu_bytes <= 0:
            raise ConfigurationError("MTU must be positive")


@dataclass(frozen=True)
class CpuParams:
    """CPU cost model for storage-path software work."""

    xor_rate: float = 80 * MB  # parity XOR throughput (B/s)
    memcpy_rate: float = 180 * MB
    #: Per-request driver overhead at kernel level (CDD path).
    kernel_request_overhead_s: float = 50 * US
    #: Per-request overhead through a user-level server (NFS-style RPC).
    user_level_request_overhead_s: float = 400 * US

    def xor_time(self, nbytes: float) -> float:
        """CPU time for one XOR pass over ``nbytes``."""
        return nbytes / self.xor_rate

    def validate(self) -> None:
        if self.xor_rate <= 0 or self.memcpy_rate <= 0:
            raise ConfigurationError("CPU rates must be positive")


@dataclass(frozen=True)
class ArrayGeometry:
    """An n-wide × k-deep distributed disk array (paper's Fig. 3).

    ``n`` nodes each drive ``k`` local disks; the stripe width is ``n``
    and consecutive stripe groups pipeline across each node's k disks.
    """

    n: int = 12  # nodes / stripe width
    k: int = 1  # disks per node / pipeline depth
    block_size: int = 32 * KiB

    @property
    def total_disks(self) -> int:
        return self.n * self.k

    def validate(self) -> None:
        if self.n < 2:
            raise ConfigurationError("array needs at least 2 nodes")
        if self.k < 1:
            raise ConfigurationError("k must be at least 1")
        if self.block_size <= 0:
            raise ConfigurationError("block size must be positive")


@dataclass(frozen=True)
class ClusterConfig:
    """Complete configuration of a simulated cluster."""

    geometry: ArrayGeometry = field(default_factory=ArrayGeometry)
    disk: DiskParams = field(default_factory=DiskParams)
    network: NetworkParams = field(default_factory=NetworkParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    seed: int = 0x5EED

    @property
    def n_nodes(self) -> int:
        return self.geometry.n

    def validate(self) -> None:
        self.geometry.validate()
        self.disk.validate()
        self.network.validate()
        self.cpu.validate()

    def with_geometry(self, n: int, k: int = 1, **kw) -> "ClusterConfig":
        """A copy with a different array geometry."""
        geo = replace(self.geometry, n=n, k=k, **kw)
        return replace(self, geometry=geo)


def trojans_cluster(n: int = 12, k: int = 1) -> ClusterConfig:
    """The USC Trojans cluster preset: 12 PII/400 nodes, Fast Ethernet,
    one 10 GB SCSI disk per node (k > 1 models the 2D arrays of Fig. 3)."""
    cfg = ClusterConfig(geometry=ArrayGeometry(n=n, k=k))
    cfg.validate()
    return cfg

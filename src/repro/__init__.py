"""repro — a full reproduction of RAID-x (Hwang, Jin & Ho, HPDC 2000).

Distributed disk arrays with orthogonal striping and mirroring (OSM),
cooperative disk drivers forming a single I/O space, baselines (NFS,
RAID-5, RAID-10, chained declustering), an Andrew-benchmark file system,
and striped+staggered checkpointing — all running on a from-scratch
discrete-event cluster simulator.

Quickstart::

    from repro import build_cluster, trojans_cluster
    from repro.workloads import ParallelIOWorkload

    cluster = build_cluster(trojans_cluster(n=4), architecture="raidx")
    result = ParallelIOWorkload(cluster, clients=4, op="write",
                                size=2_000_000).run()
    print(result.aggregate_bandwidth_mb_s)
"""

from repro.config import (
    ArrayGeometry,
    ClusterConfig,
    CpuParams,
    DiskParams,
    NetworkParams,
    trojans_cluster,
)
from repro.errors import (
    AddressError,
    ConfigurationError,
    DataLossError,
    DiskFailedError,
    LayoutError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "ArrayGeometry",
    "ClusterConfig",
    "CpuParams",
    "DiskParams",
    "NetworkParams",
    "trojans_cluster",
    "AddressError",
    "ConfigurationError",
    "DataLossError",
    "DiskFailedError",
    "LayoutError",
    "ReproError",
    "build_cluster",
    "__version__",
]


def build_cluster(config=None, architecture="raidx", **kwargs):
    """Assemble a simulated cluster with the given storage architecture.

    Convenience wrapper around :func:`repro.cluster.cluster.build_cluster`
    (imported lazily to keep ``import repro`` light).
    """
    from repro.cluster.cluster import build_cluster as _build

    return _build(config, architecture=architecture, **kwargs)

"""A block-level file system over the single I/O space.

Minimal but real: inodes, directories, a block allocator, per-node
caches with write-invalidate consistency — enough to run the Andrew
benchmark with the metadata/data op mix the paper's file-system
experiments generate, on top of *any* storage architecture.
"""

from repro.fs.blockdev import BlockDevice
from repro.fs.allocator import BlockAllocator
from repro.fs.inode import Inode, InodeTable, FileType
from repro.fs.filesystem import FileSystem, FsConfig

__all__ = [
    "BlockAllocator",
    "BlockDevice",
    "FileSystem",
    "FileType",
    "FsConfig",
    "Inode",
    "InodeTable",
]

"""Directory contents: ordered entry lists with block placement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import FileExists, FileNotFound

#: On-disk directory entry footprint (name + inode + record header).
DIRENT_BYTES = 32


@dataclass
class DirEntry:
    name: str
    ino: int


class DirectoryData:
    """In-memory contents of one directory, with entry→block mapping."""

    def __init__(self, block_size: int):
        self.entries: List[DirEntry] = []
        self._by_name: Dict[str, int] = {}
        self.entries_per_block = max(1, block_size // DIRENT_BYTES)

    def __len__(self) -> int:
        return len(self.entries)

    def names(self) -> List[str]:
        return [e.name for e in self.entries]

    def block_index_of_entry(self, position: int) -> int:
        """Which of the directory's data blocks holds entry ``position``."""
        return position // self.entries_per_block

    def n_blocks(self) -> int:
        """Data blocks needed for the current entry count."""
        if not self.entries:
            return 1
        return -(-len(self.entries) // self.entries_per_block)

    def find(self, name: str) -> Optional[int]:
        """Entry position of ``name`` (None if absent)."""
        return self._by_name.get(name)

    def lookup(self, name: str) -> DirEntry:
        pos = self.find(name)
        if pos is None:
            raise FileNotFound(name)
        return self.entries[pos]

    def add(self, name: str, ino: int) -> int:
        """Insert an entry; returns its position."""
        if name in self._by_name:
            raise FileExists(name)
        self.entries.append(DirEntry(name, ino))
        pos = len(self.entries) - 1
        self._by_name[name] = pos
        return pos

    def remove(self, name: str) -> DirEntry:
        """Delete an entry (compacting: last entry fills the hole)."""
        pos = self.find(name)
        if pos is None:
            raise FileNotFound(name)
        entry = self.entries[pos]
        last = self.entries.pop()
        del self._by_name[name]
        if last is not entry:
            self.entries[pos] = last
            self._by_name[last.name] = pos
        return entry

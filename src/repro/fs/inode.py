"""Inodes and the on-disk inode table."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.errors import FileSystemError, NoSpaceError

#: On-disk inode footprint (drives inode-table block addressing).
INODE_BYTES = 128
#: Direct block pointers per inode; larger files use one indirect block.
N_DIRECT = 12


class FileType(str, Enum):
    FILE = "file"
    DIRECTORY = "dir"


@dataclass
class Inode:
    """An in-memory inode; block layout mirrors a classic Unix FS."""

    ino: int
    type: FileType
    size: int = 0
    nlink: int = 1
    direct: List[int] = field(default_factory=list)
    indirect_block: Optional[int] = None
    indirect: List[int] = field(default_factory=list)
    ctime: float = 0.0
    mtime: float = 0.0

    @property
    def is_dir(self) -> bool:
        return self.type is FileType.DIRECTORY

    def block_list(self) -> List[int]:
        """All data blocks of the file, in order."""
        return list(self.direct) + list(self.indirect)

    def nth_block(self, idx: int) -> int:
        blocks = self.block_list()
        if not 0 <= idx < len(blocks):
            raise FileSystemError(
                f"inode {self.ino}: block index {idx} out of range"
            )
        return blocks[idx]

    def needs_indirect(self, n_blocks: int) -> bool:
        return n_blocks > N_DIRECT

    def attach_blocks(self, blocks: List[int]) -> None:
        """Append data blocks, spilling past N_DIRECT into the indirect
        list (the indirect *pointer block* itself is allocated by the FS)."""
        for b in blocks:
            if len(self.direct) < N_DIRECT:
                self.direct.append(b)
            else:
                self.indirect.append(b)

    def truncate_blocks(self) -> List[int]:
        """Drop all data blocks; returns them for deallocation."""
        freed = self.block_list()
        if self.indirect_block is not None:
            freed.append(self.indirect_block)
        self.direct = []
        self.indirect = []
        self.indirect_block = None
        self.size = 0
        return freed


class InodeTable:
    """Fixed-size inode array with on-disk block addressing."""

    def __init__(self, first_block: int, n_inodes: int, block_size: int):
        if n_inodes <= 0:
            raise ValueError("need at least one inode")
        self.first_block = first_block
        self.n_inodes = n_inodes
        self.inodes_per_block = max(1, block_size // INODE_BYTES)
        self._table: dict[int, Inode] = {}
        self._next = 0

    @property
    def n_blocks(self) -> int:
        """Blocks the table occupies on disk."""
        return -(-self.n_inodes // self.inodes_per_block)

    def block_of(self, ino: int) -> int:
        """The FS block holding inode ``ino``."""
        if not 0 <= ino < self.n_inodes:
            raise FileSystemError(f"inode {ino} out of range")
        return self.first_block + ino // self.inodes_per_block

    def allocate(self, type: FileType, now: float) -> Inode:
        """Create a fresh inode."""
        start = self._next
        for probe in range(self.n_inodes):
            ino = (start + probe) % self.n_inodes
            if ino not in self._table:
                inode = Inode(ino=ino, type=type, ctime=now, mtime=now)
                self._table[ino] = inode
                self._next = (ino + 1) % self.n_inodes
                return inode
        raise NoSpaceError("inode table full")

    def get(self, ino: int) -> Inode:
        try:
            return self._table[ino]
        except KeyError:
            raise FileSystemError(f"stale inode {ino}") from None

    def release(self, ino: int) -> None:
        if ino not in self._table:
            raise FileSystemError(f"double release of inode {ino}")
        del self._table[ino]

    def __len__(self) -> int:
        return len(self._table)

"""Block device adapter: FS-level block I/O with per-node caching.

Translates "node X reads/writes FS block B" into storage-system requests
and charges cache/consistency costs:

* read hit  → one memory copy on the client's CPU;
* read miss → storage read + cache insert;
* write     → storage write, invalidations to every peer caching the
  block (small control messages), then local insert.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache import BlockCache, CacheDirectory
from repro.cluster.message import ACK_BYTES, MessageKind


class BlockDevice:
    """FS-block interface over a storage system, with coherent caches."""

    def __init__(
        self,
        cluster,
        cache_blocks_per_node: int = 256,
        cached: bool = True,
        fs_block_size: int = 4096,
    ):
        """``fs_block_size`` is the file system's own block size (ext2-era
        default 4 KiB) — independent of, and typically smaller than, the
        RAID striping unit underneath."""
        self.cluster = cluster
        self.storage = cluster.storage
        self.block_size = fs_block_size
        self.n_blocks = self.storage.capacity // self.block_size
        self.cached = cached and cache_blocks_per_node > 0
        if self.cached:
            self.caches: List[BlockCache] = [
                BlockCache(i, capacity_blocks=cache_blocks_per_node)
                for i in range(cluster.n_nodes)
            ]
            self.directory: Optional[CacheDirectory] = CacheDirectory(
                self.caches
            )
        else:
            self.caches = []
            self.directory = None

    def check(self, block: int) -> None:
        if not 0 <= block < self.n_blocks:
            raise ValueError(
                f"FS block {block} outside device of {self.n_blocks} blocks"
            )

    def read_block(self, node: int, block: int, nbytes: Optional[int] = None):
        """Process generator: read (part of) one FS block from ``node``."""
        self.check(block)
        nbytes = self.block_size if nbytes is None else nbytes
        if self.directory is not None and self.directory.lookup(node, block):
            yield self.cluster.nodes[node].cpu.memcpy(nbytes)
            return
        yield self.storage.submit(
            node, "read", block * self.block_size, nbytes
        )
        if self.directory is not None:
            self.directory.note_cached(node, block)

    def write_block(self, node: int, block: int, nbytes: Optional[int] = None):
        """Process generator: write (part of) one FS block from ``node``."""
        self.check(block)
        nbytes = self.block_size if nbytes is None else nbytes
        yield self.storage.submit(
            node, "write", block * self.block_size, nbytes
        )
        if self.directory is not None:
            holders = self.directory.invalidate_peers(node, block)
            for peer in holders:
                # Invalidation control message (fire-and-forget).
                self.cluster.transport.send(
                    MessageKind.INVALIDATE, node, peer, ACK_BYTES
                )
            self.directory.note_cached(node, block)

    def cache_hit_rate(self) -> float:
        """Aggregate hit rate across node caches (0 when uncached)."""
        if not self.caches:
            return 0.0
        hits = sum(c.hits for c in self.caches)
        total = hits + sum(c.misses for c in self.caches)
        return hits / total if total else 0.0

"""Block allocation: a bitmap allocator with extent-friendly policy."""

from __future__ import annotations

from typing import List

from repro.errors import NoSpaceError


class BlockAllocator:
    """First-fit-with-hint allocator over the FS data region.

    Tracks free blocks in a bitmap (a Python bytearray here); the FS
    charges one bitmap-block write per allocate/free call.  The
    next-fit hint keeps a growing file's blocks nearly contiguous, which
    matters to the disk model's sequential detection.
    """

    def __init__(self, first_block: int, n_blocks: int):
        if n_blocks <= 0:
            raise ValueError("empty allocation region")
        self.first_block = first_block
        self.n_blocks = n_blocks
        self._free = bytearray(b"\x01" * n_blocks)
        self._hint = 0
        self.allocated = 0

    @property
    def free_count(self) -> int:
        return self.n_blocks - self.allocated

    def allocate(self, count: int = 1) -> List[int]:
        """Allocate ``count`` blocks, preferring a contiguous run."""
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self.free_count:
            raise NoSpaceError(
                f"need {count} blocks, only {self.free_count} free"
            )
        out: List[int] = []
        idx = self._hint
        scanned = 0
        while len(out) < count and scanned < self.n_blocks:
            if self._free[idx]:
                self._free[idx] = 0
                out.append(self.first_block + idx)
            idx = (idx + 1) % self.n_blocks
            scanned += 1
        if len(out) < count:  # pragma: no cover - guarded by free_count
            for b in out:
                self._free[b - self.first_block] = 1
            raise NoSpaceError("allocator bitmap inconsistent")
        self._hint = idx
        self.allocated += count
        return out

    def free(self, blocks) -> None:
        """Return blocks to the pool."""
        for b in blocks:
            idx = b - self.first_block
            if not 0 <= idx < self.n_blocks:
                raise ValueError(f"block {b} outside allocator region")
            if self._free[idx]:
                raise ValueError(f"double free of block {b}")
            self._free[idx] = 1
            self.allocated -= 1

    def is_free(self, block: int) -> bool:
        idx = block - self.first_block
        if not 0 <= idx < self.n_blocks:
            raise ValueError(f"block {block} outside allocator region")
        return bool(self._free[idx])

"""The file system proper: path operations charging realistic block I/O.

Every public operation is a process generator taking the acting client
node as its first argument; it charges metadata and data block I/O
through the :class:`~repro.fs.blockdev.BlockDevice` (which routes to the
cluster's storage architecture and maintains cache coherence).

On-disk region map::

    block 0                superblock
    [1, 1+bitmap_blocks)   allocation bitmap
    [.., ..+inode_blocks)  inode table
    [.., n_blocks)         data region
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    FileExists,
    FileNotFound,
    FileSystemError,
    IsADirectory,
    NotADirectory,
)
from repro.fs.allocator import BlockAllocator
from repro.fs.blockdev import BlockDevice
from repro.fs.directory import DirectoryData
from repro.fs.inode import FileType, Inode, InodeTable


@dataclass(frozen=True)
class FsConfig:
    """Tunables of the file system."""

    n_inodes: int = 4096
    cache_blocks_per_node: int = 256
    cached: bool = True
    #: In-flight data blocks per file read/write (kernel read-ahead /
    #: write-behind window).
    data_queue_depth: int = 4
    #: NFS close-to-open consistency: charge one GETATTR round trip to
    #: the server per path resolution when mounted over NFS (cache hits
    #: do not exempt the client from revalidating).
    nfs_close_to_open: bool = True
    #: The file system's own block size (ext2-era default: 4 KiB).
    fs_block_size: int = 4096


@dataclass
class StatResult:
    """Subset of ``struct stat`` the benchmarks need."""

    ino: int
    type: FileType
    size: int
    nlink: int
    mtime: float


class FileSystem:
    """A mounted file system instance over a cluster's storage."""

    def __init__(self, cluster, config: Optional[FsConfig] = None):
        self.cluster = cluster
        self.config = config or FsConfig()
        self.dev = BlockDevice(
            cluster,
            cache_blocks_per_node=self.config.cache_blocks_per_node,
            cached=self.config.cached,
            fs_block_size=self.config.fs_block_size,
        )
        bs = self.dev.block_size
        total = self.dev.n_blocks
        self.inodes = InodeTable(0, self.config.n_inodes, bs)  # placed below
        bitmap_blocks = -(-total // (bs * 8))
        inode_blocks = self.inodes.n_blocks
        first_data = 1 + bitmap_blocks + inode_blocks
        if first_data >= total:
            raise FileSystemError("device too small for the FS layout")
        self.inodes.first_block = 1 + bitmap_blocks
        self._bitmap_first = 1
        self._bitmap_blocks = bitmap_blocks
        self.alloc = BlockAllocator(first_data, total - first_data)
        self._dirs: Dict[int, DirectoryData] = {}
        # Root directory.
        root = self.inodes.allocate(FileType.DIRECTORY, 0.0)
        root.nlink = 2
        self.root_ino = root.ino
        self._dirs[root.ino] = DirectoryData(bs)
        # Statistics.
        self.ops: Dict[str, int] = {}

    # -- small helpers -----------------------------------------------------
    @property
    def block_size(self) -> int:
        return self.dev.block_size

    def _count(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    def _bitmap_block_for(self, block: int) -> int:
        bs = self.dev.block_size
        return self._bitmap_first + block // (bs * 8)

    def _dir_data(self, inode: Inode) -> DirectoryData:
        if not inode.is_dir:
            raise NotADirectory(f"inode {inode.ino}")
        return self._dirs[inode.ino]

    @staticmethod
    def split_path(path: str) -> List[str]:
        parts = [p for p in path.split("/") if p]
        for p in parts:
            if p in (".", ".."):
                raise FileSystemError("relative components not supported")
        return parts

    # -- metadata I/O charging ------------------------------------------------
    def _read_inode(self, client: int, ino: int):
        yield from self.dev.read_block(client, self.inodes.block_of(ino))

    def _write_inode(self, client: int, ino: int):
        yield from self.dev.write_block(client, self.inodes.block_of(ino))

    def _charge_alloc(self, client: int, blocks: List[int]):
        """One bitmap-block write per distinct bitmap block touched."""
        touched = sorted({self._bitmap_block_for(b) for b in blocks})
        for bb in touched:
            yield from self.dev.write_block(client, bb)

    def _read_dir_entry(self, client: int, dir_inode: Inode, position: int):
        """Charge the linear-scan reads up to the entry's block."""
        data = self._dir_data(dir_inode)
        last = data.block_index_of_entry(position)
        for idx in range(last + 1):
            if idx < len(dir_inode.block_list()):
                yield from self.dev.read_block(
                    client, dir_inode.nth_block(idx)
                )

    def _dir_block_for_entry(self, client: int, dir_inode: Inode,
                             position: int):
        """Ensure the directory has a data block for ``position``; returns
        its FS block (allocating and charging as needed)."""
        data = self._dir_data(dir_inode)
        idx = data.block_index_of_entry(position)
        blocks = dir_inode.block_list()
        while idx >= len(blocks):
            newb = self.alloc.allocate(1)
            yield from self._charge_alloc(client, newb)
            dir_inode.attach_blocks(newb)
            blocks = dir_inode.block_list()
        return blocks[idx]

    def _revalidate(self, client: int):
        """NFS close-to-open: one GETATTR RPC per path resolution."""
        from repro.cluster.message import (
            ACK_BYTES,
            HEADER_BYTES,
            MessageKind,
        )
        from repro.cluster.systems import NfsSystem

        storage = self.cluster.storage
        if not self.config.nfs_close_to_open:
            return
        if not isinstance(storage, NfsSystem):
            return
        tr = self.cluster.transport
        server = storage.server
        yield from tr.message(
            MessageKind.RPC_REQ, client, server, HEADER_BYTES
        )
        yield self.cluster.nodes[server].cpu.driver_entry(kernel_level=False)
        yield from tr.message(MessageKind.RPC_REPLY, server, client, ACK_BYTES)

    # -- path resolution ---------------------------------------------------
    def _resolve(self, client: int, path: str, want_parent: bool = False):
        """Walk ``path``; returns (inode, parent_inode, leaf_name).

        Charges a directory-block scan and an inode read per component.
        """
        yield from self._revalidate(client)
        parts = self.split_path(path)
        cur = self.inodes.get(self.root_ino)
        yield from self._read_inode(client, cur.ino)
        parent: Optional[Inode] = None
        name = ""
        for depth, comp in enumerate(parts):
            data = self._dir_data(cur)
            pos = data.find(comp)
            is_leaf = depth == len(parts) - 1
            if pos is None:
                if want_parent and is_leaf:
                    return None, cur, comp
                raise FileNotFound(path)
            yield from self._read_dir_entry(client, cur, pos)
            child = self.inodes.get(data.entries[pos].ino)
            yield from self._read_inode(client, child.ino)
            parent, cur, name = cur, child, comp
        if not parts:
            name = "/"
        return cur, parent, name

    # -- public operations -----------------------------------------------
    def mkdir(self, client: int, path: str):
        """Create a directory; returns its inode number."""
        self._count("mkdir")
        inode, parent, name = yield from self._resolve(
            client, path, want_parent=True
        )
        if inode is not None:
            raise FileExists(path)
        child = self.inodes.allocate(FileType.DIRECTORY, self.env_now())
        child.nlink = 2
        self._dirs[child.ino] = DirectoryData(self.block_size)
        yield from self._link(client, parent, name, child)
        return child.ino

    def create(self, client: int, path: str):
        """Create an empty regular file; returns its inode number."""
        self._count("create")
        inode, parent, name = yield from self._resolve(
            client, path, want_parent=True
        )
        if inode is not None:
            raise FileExists(path)
        child = self.inodes.allocate(FileType.FILE, self.env_now())
        yield from self._link(client, parent, name, child)
        return child.ino

    def _link(self, client: int, parent: Inode, name: str, child: Inode):
        data = self._dir_data(parent)
        pos = data.add(name, child.ino)
        dir_block = yield from self._dir_block_for_entry(client, parent, pos)
        yield from self.dev.write_block(client, dir_block)
        parent.size = len(data) * 32
        parent.mtime = self.env_now()
        yield from self._write_inode(client, parent.ino)
        yield from self._write_inode(client, child.ino)

    def write_file(self, client: int, path: str, nbytes: int,
                   truncate: bool = True):
        """Write ``nbytes`` to a file (replacing contents by default)."""
        self._count("write_file")
        inode, _parent, _ = yield from self._resolve(client, path)
        if inode.is_dir:
            raise IsADirectory(path)
        if truncate and inode.size:
            freed = inode.truncate_blocks()
            if freed:
                self.alloc.free(freed)
                yield from self._charge_alloc(client, freed)
        bs = self.block_size
        need = -(-nbytes // bs) if nbytes else 0
        have = len(inode.block_list())
        if need > have:
            fresh = self.alloc.allocate(need - have)
            yield from self._charge_alloc(client, fresh)
            if inode.needs_indirect(need) and inode.indirect_block is None:
                ib = self.alloc.allocate(1)
                inode.indirect_block = ib[0]
                yield from self._charge_alloc(client, ib)
            inode.attach_blocks(fresh)
        if inode.indirect_block is not None:
            yield from self.dev.write_block(client, inode.indirect_block)
        # Data writes with a bounded write-behind window.
        yield from self._data_io(client, "write", inode, nbytes)
        inode.size = nbytes if truncate else max(inode.size, nbytes)
        inode.mtime = self.env_now()
        yield from self._write_inode(client, inode.ino)
        return nbytes

    def read_file(self, client: int, path: str):
        """Read a whole file; returns its size."""
        self._count("read_file")
        inode, _parent, _ = yield from self._resolve(client, path)
        if inode.is_dir:
            raise IsADirectory(path)
        if inode.indirect_block is not None:
            yield from self.dev.read_block(client, inode.indirect_block)
        yield from self._data_io(client, "read", inode, inode.size)
        return inode.size

    def _data_io(self, client: int, op: str, inode: Inode, nbytes: int):
        bs = self.block_size
        blocks = inode.block_list()
        remaining = nbytes
        inflight: List = []
        env = self.cluster.env
        for b in blocks:
            if remaining <= 0:
                break
            take = min(bs, remaining)
            remaining -= take
            if op == "read":
                ev = env.process(self.dev.read_block(client, b, take))
            else:
                ev = env.process(self.dev.write_block(client, b, take))
            inflight.append(ev)
            if len(inflight) >= self.config.data_queue_depth:
                yield inflight.pop(0)
        for ev in inflight:
            yield ev

    def stat(self, client: int, path: str):
        """Return a :class:`StatResult` for ``path``."""
        self._count("stat")
        inode, _parent, _ = yield from self._resolve(client, path)
        return StatResult(
            ino=inode.ino,
            type=inode.type,
            size=inode.size,
            nlink=inode.nlink,
            mtime=inode.mtime,
        )

    def readdir(self, client: int, path: str):
        """List a directory; returns the entry names."""
        self._count("readdir")
        inode, _parent, _ = yield from self._resolve(client, path)
        data = self._dir_data(inode)
        for b in inode.block_list():
            yield from self.dev.read_block(client, b)
        return data.names()

    def unlink(self, client: int, path: str):
        """Remove a file (directories use :meth:`rmdir`)."""
        self._count("unlink")
        inode, parent, name = yield from self._resolve(client, path)
        if inode.is_dir:
            raise IsADirectory(path)
        yield from self._unlink_common(client, parent, name, inode)

    def rmdir(self, client: int, path: str):
        """Remove an empty directory."""
        self._count("rmdir")
        inode, parent, name = yield from self._resolve(client, path)
        if not inode.is_dir:
            raise NotADirectory(path)
        if len(self._dir_data(inode)):
            raise FileSystemError(f"directory not empty: {path}")
        del self._dirs[inode.ino]
        yield from self._unlink_common(client, parent, name, inode)

    def _unlink_common(self, client, parent: Inode, name: str, inode: Inode):
        if parent is None:
            raise FileSystemError("cannot remove the root directory")
        data = self._dir_data(parent)
        data.remove(name)
        blocks = parent.block_list()
        if blocks:
            yield from self.dev.write_block(client, blocks[0])
        freed = inode.truncate_blocks()
        if freed:
            self.alloc.free(freed)
            yield from self._charge_alloc(client, freed)
        self.inodes.release(inode.ino)
        yield from self._write_inode(client, inode.ino)
        parent.mtime = self.env_now()
        yield from self._write_inode(client, parent.ino)

    def rename(self, client: int, src: str, dst: str):
        """Move/rename a file or directory (fails if ``dst`` exists)."""
        self._count("rename")
        inode, src_parent, src_name = yield from self._resolve(client, src)
        if src_parent is None:
            raise FileSystemError("cannot rename the root directory")
        existing, dst_parent, dst_name = yield from self._resolve(
            client, dst, want_parent=True
        )
        if existing is not None:
            raise FileExists(dst)
        if inode.is_dir and dst.startswith(src.rstrip("/") + "/"):
            raise FileSystemError("cannot move a directory into itself")
        # Drop the old entry, add the new one; charge one directory
        # block write at each end plus the parents' inode updates.
        self._dir_data(src_parent).remove(src_name)
        src_blocks = src_parent.block_list()
        if src_blocks:
            yield from self.dev.write_block(client, src_blocks[0])
        data = self._dir_data(dst_parent)
        pos = data.add(dst_name, inode.ino)
        dir_block = yield from self._dir_block_for_entry(
            client, dst_parent, pos
        )
        yield from self.dev.write_block(client, dir_block)
        now = self.env_now()
        src_parent.mtime = now
        dst_parent.mtime = now
        yield from self._write_inode(client, src_parent.ino)
        if dst_parent.ino != src_parent.ino:
            yield from self._write_inode(client, dst_parent.ino)

    def exists(self, client: int, path: str):
        """True if ``path`` resolves (charges the lookup I/O)."""
        try:
            yield from self._resolve(client, path)
            return True
        except FileNotFound:
            return False

    # -- misc ---------------------------------------------------------------
    def env_now(self) -> float:
        return self.cluster.env.now

    def op_counts(self) -> Dict[str, int]:
        return dict(self.ops)

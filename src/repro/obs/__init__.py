"""Observability: span tracing, metrics, load accounting, exporters.

The subsystem has five parts (DESIGN.md §6.10, §6.15):

* :mod:`repro.obs.trace` — a :class:`Tracer` recording typed spans
  (disk queue wait, disk service, NIC tx/rx, lock wait, background
  mirror flush, …) against named tracks, with a no-op
  :data:`NULL_TRACER` standing in when tracing is off;
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters and log-bucketed latency histograms (p50/p95/p99/max);
* :mod:`repro.obs.runtime` — the process-wide tracer slot the
  instrumentation sites read (``runtime.TRACER``), with
  :func:`~repro.obs.runtime.install` / :func:`~repro.obs.runtime.reset`
  and the :func:`~repro.obs.runtime.tracing` context manager;
* :mod:`repro.obs.export` — JSONL span logs and Chrome trace-event JSON
  (duration spans plus queue-depth / link-occupancy counter tracks)
  viewable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* :mod:`repro.obs.load` — on-demand collection of the always-on
  hardware load counters (disk busy/bytes/queue-depth high-water,
  CPU/SCSI/NIC link time) into a shard-mergeable registry.

Instrumentation sites pay one module-attribute read plus one boolean
check per potential span when tracing is disabled; the perf-smoke floors
in ``tests/test_perf_smoke.py`` pin the overhead budget.
"""

from repro.obs.metrics import Counter, LogHistogram, MetricsRegistry
from repro.obs.trace import (
    CKPT_SYNC,
    CKPT_WRITE,
    CPU_DRIVER,
    CPU_PROTO,
    DISK_QUEUE_WAIT,
    DISK_SERVICE,
    LOCK_WAIT,
    MIRROR_FLUSH,
    NET_RX,
    NET_TX,
    NULL_TRACER,
    REQUEST,
    SCSI_TRANSFER,
    SPAN_KINDS,
    NullTracer,
    OpenSpan,
    Span,
    Tracer,
)
from repro.obs.export import (
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.load import collect_load, disk_utilizations, utilization_skew
from repro.obs import runtime

__all__ = [
    "Counter",
    "LogHistogram",
    "MetricsRegistry",
    "Span",
    "OpenSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_KINDS",
    "REQUEST",
    "DISK_QUEUE_WAIT",
    "DISK_SERVICE",
    "NET_TX",
    "NET_RX",
    "LOCK_WAIT",
    "MIRROR_FLUSH",
    "CPU_DRIVER",
    "CPU_PROTO",
    "SCSI_TRANSFER",
    "CKPT_SYNC",
    "CKPT_WRITE",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "collect_load",
    "disk_utilizations",
    "utilization_skew",
    "runtime",
]

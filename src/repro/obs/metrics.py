"""Cluster-wide metrics: counters and log-bucketed latency histograms.

A :class:`MetricsRegistry` names metrics lazily — the first ``inc`` or
``observe`` of a name creates it — so instrumentation sites never need
registration boilerplate.  Histograms are log-bucketed
(:class:`LogHistogram`): memory stays O(decades of dynamic range) no
matter how many samples land, and any reported quantile is within the
bucket growth factor (~±9% relative) of the exact nearest-rank value,
while min/max/mean/total are exact.
"""

from __future__ import annotations

import math
from typing import Dict, List


class Counter:
    """A monotonically adjustable named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, delta: int = 1) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


#: Geometric bucket growth: 2**(1/4) per bucket, ~19% wide buckets, so a
#: quantile read from bucket centers is within ~±9% of the exact value.
_GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(_GROWTH)


class LogHistogram:
    """Log-bucketed distribution of non-negative values (latencies).

    ``add`` is O(1); quantiles walk the (small) sorted bucket set.  Exact
    ``min``/``max``/``mean``/``total`` are kept alongside the buckets,
    and quantile estimates are clamped into ``[min, max]`` so the tails
    never over-shoot the observed range.
    """

    __slots__ = ("name", "counts", "count", "total", "zeros", "_min", "_max")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.zeros = 0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Record one sample (must be >= 0)."""
        if value < 0:
            raise ValueError(f"negative sample {value!r}")
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value == 0.0:
            self.zeros += 1
            return
        idx = math.floor(math.log(value) / _LOG_GROWTH)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def __len__(self) -> int:
        return self.count

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile estimate; ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError("q must be within [0, 100]")
        if not self.count:
            return math.nan
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zeros:
            return 0.0
        seen = self.zeros
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                # Bucket [G**idx, G**(idx+1)): report its geometric center,
                # clamped into the exactly-tracked observed range.
                center = _GROWTH ** (idx + 0.5)
                return min(max(center, self._min), self._max)
        return self._max  # pragma: no cover - rank <= count always lands

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram in (exact: buckets and moments add)."""
        for idx, c in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + c
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        if other.count:
            if other._min < self._min:
                self._min = other._min
            if other._max > self._max:
                self._max = other._max

    def to_payload(self) -> Dict:
        """A JSON-safe dict that roundtrips exactly.

        Bucket counts become sorted ``[index, count]`` pairs and the
        non-finite empty-range sentinels become ``None``, so the payload
        survives ``json.dumps``/``loads`` unchanged — a requirement for
        storing shard rows in the content-addressed sweep cache.
        """
        return {
            "counts": [[i, self.counts[i]] for i in sorted(self.counts)],
            "count": self.count,
            "total": self.total,
            "zeros": self.zeros,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
        }

    @classmethod
    def from_payload(cls, payload: Dict, name: str = "") -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_payload` output."""
        h = cls(name)
        h.counts = {int(i): int(c) for i, c in payload["counts"]}
        h.count = int(payload["count"])
        h.total = float(payload["total"])
        h.zeros = int(payload["zeros"])
        if payload["min"] is not None:
            h._min = float(payload["min"])
        if payload["max"] is not None:
            h._max = float(payload["max"])
        return h

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, LogHistogram] = {}

    # -- access ----------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> LogHistogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = LogHistogram(name)
        return h

    def inc(self, name: str, delta: int = 1) -> None:
        self.counter(name).inc(delta)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).add(value)

    def counter_names(self) -> List[str]:
        return sorted(self._counters)

    def histogram_names(self) -> List[str]:
        return sorted(self._histograms)

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()

    # -- shard merging ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, histograms merge.

        Merging registries in a fixed order (the sweep reducer walks
        shard rows in seed order) keeps float counter totals
        byte-identical no matter how many workers produced the shards.
        """
        for name, c in other._counters.items():
            self.counter(name).value += c.value
        for name, h in other._histograms.items():
            self.histogram(name).merge(h)

    def to_payload(self) -> Dict:
        """A JSON-safe dict that roundtrips exactly (like
        :meth:`LogHistogram.to_payload`) — shard rows carry one of these
        through the content-addressed sweep cache."""
        return {
            "counters": {
                n: self._counters[n].value for n in sorted(self._counters)
            },
            "histograms": {
                n: self._histograms[n].to_payload()
                for n in sorted(self._histograms)
            },
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_payload` output."""
        reg = cls()
        for name, value in payload.get("counters", {}).items():
            reg.counter(name).value = value
        for name, hp in payload.get("histograms", {}).items():
            reg._histograms[name] = LogHistogram.from_payload(hp, name)
        return reg

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as plain data (counters + histogram summaries)."""
        return {
            "counters": {
                n: c.value for n, c in sorted(self._counters.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def render(self, title: str = "metrics",
               unit_scale: float = 1e3, unit: str = "ms") -> str:
        """An aligned text table of every histogram and counter.

        Latency columns are scaled by ``unit_scale`` (default: seconds
        rendered as milliseconds).
        """
        lines = [title, "-" * len(title)]
        if self._histograms:
            name_w = max(len(n) for n in self._histograms)
            header = (
                f"{'histogram':<{name_w}} {'count':>8} {'mean':>9} "
                f"{'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}  [{unit}]"
            )
            lines.append(header)
            for name in sorted(self._histograms):
                s = self._histograms[name].summary()
                lines.append(
                    f"{name:<{name_w}} {int(s['count']):>8} "
                    + " ".join(
                        f"{s[k] * unit_scale:>9.3f}"
                        for k in ("mean", "p50", "p95", "p99", "max")
                    )
                )
        if self._counters:
            if self._histograms:
                lines.append("")
            name_w = max(len(n) for n in self._counters)
            for name in sorted(self._counters):
                lines.append(
                    f"{name:<{name_w}} {self._counters[name].value:>12}"
                )
        if not self._counters and not self._histograms:
            lines.append("(empty)")
        return "\n".join(lines)

"""Span-based request tracing over simulated time.

A *span* is one timed piece of work on a named *track* — a disk, a NIC
direction, a node's CPU, a lock home.  Spans carry a *kind* from the
taxonomy below, an optional *trace id* linking every span caused by one
logical request, and free-form args.

Because the simulator is a single-threaded discrete-event kernel, span
starts are known exactly at completion time (``submitted_at``, the time
before a ``yield``), so the whole API is the one-shot :meth:`Tracer.record`
— no open-span stacks, no context-local state, no clock reads beyond the
simulation's own ``env.now``.

When tracing is off the process-wide slot holds :data:`NULL_TRACER`
(``enabled = False``); instrumentation sites check that flag and skip
all span work, keeping the disabled overhead to one attribute read and
one branch per potential span (guarded by the perf-smoke floors).
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional, Set

from repro.obs.metrics import MetricsRegistry

# -- span taxonomy -------------------------------------------------------
#: Root span of one logical request against the storage system.
REQUEST = "request"
#: Time a disk request waited in the per-disk queue before service.
DISK_QUEUE_WAIT = "disk.queue_wait"
#: Seek + rotation + media transfer at the disk (args carry the split).
DISK_SERVICE = "disk.service"
#: NIC transmit occupancy (first byte handed to TX → last fragment sent).
NET_TX = "net.tx"
#: NIC receive occupancy (first fragment reserved → last byte landed).
NET_RX = "net.rx"
#: Wait for a write-lock group grant (distributed or stripe-local).
LOCK_WAIT = "lock.wait"
#: Background image flush: data commit → image extent on disk
#: (the RAID-x vulnerability window).
MIRROR_FLUSH = "mirror.flush"
#: Kernel driver-entry CPU charge on the request path.
CPU_DRIVER = "cpu.driver"
#: Protocol-stack CPU charge at a message endpoint (or loopback memcpy).
CPU_PROTO = "cpu.proto"
#: SCSI bus occupancy between host and local disk.
SCSI_TRANSFER = "scsi.transfer"
#: Checkpoint marker exchange + barrier (the "S" overhead of Fig. 7).
CKPT_SYNC = "ckpt.sync"
#: Checkpoint state write (the "C" overhead of Fig. 7).
CKPT_WRITE = "ckpt.write"
#: Buffer-cache admission/lookup stage: one logical request's cache
#: pass (hits served by memcpy, misses filled through the engine).
CACHE_LOOKUP = "cache.lookup"
#: One destage run: dirty blocks written back through the engine.
CACHE_DESTAGE = "cache.destage"

SPAN_KINDS = (
    REQUEST,
    DISK_QUEUE_WAIT,
    DISK_SERVICE,
    NET_TX,
    NET_RX,
    LOCK_WAIT,
    MIRROR_FLUSH,
    CPU_DRIVER,
    CPU_PROTO,
    SCSI_TRANSFER,
    CKPT_SYNC,
    CKPT_WRITE,
    CACHE_LOOKUP,
    CACHE_DESTAGE,
)


class Span:
    """One recorded span: ``[start, end]`` of ``kind`` on ``track``."""

    __slots__ = ("kind", "track", "start", "end", "trace", "args")

    def __init__(
        self,
        kind: str,
        track: str,
        start: float,
        end: float,
        trace: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.track = track
        self.start = start
        self.end = end
        self.trace = trace
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "track": self.track,
            "start": self.start,
            "end": self.end,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.kind!r}, {self.track!r}, "
            f"{self.start:.6f}..{self.end:.6f}, trace={self.trace})"
        )


class OpenSpan:
    """A span opened at a known start time, closed explicitly.

    :meth:`Tracer.record` stays the hot-path API (the simulator knows a
    span's full extent at completion time), but multi-exit regions —
    request bodies with failure paths, lock-held sections — want the
    open/close form so the end time is captured on *every* exit::

        with tracer.open_span(REQUEST, track, env, trace=tid) as span:
            ...                      # closes at the with-exit, even on raise

        span = tracer.open_span(REQUEST, track, env)
        try:
            ...
        finally:
            span.close(outcome="ok")  # kwargs merge into the span args

    ``repro.lint`` (rule OBS002) statically checks that every opened
    span is closed on all paths.  Closing twice is a no-op returning the
    original span.
    """

    __slots__ = ("tracer", "kind", "track", "env", "trace", "args", "span")

    def __init__(
        self,
        tracer: "Tracer",
        kind: str,
        track: str,
        env: Any,
        trace: Optional[int] = None,
        **args: Any,
    ):
        self.tracer = tracer
        self.kind = kind
        self.track = track
        self.env = env
        self.trace = trace
        self.args = args
        self.args["_start"] = env.now
        self.span: Optional[Span] = None

    @property
    def closed(self) -> bool:
        return "_start" not in self.args

    def close(self, **more: Any) -> Optional[Span]:
        """Record the span ``[open time, env.now]``; idempotent.

        Returns ``None`` when the trace was sampled out (the metrics
        observation still happened exactly once).
        """
        if "_start" in self.args:
            start = self.args.pop("_start")
            self.args.update(more)
            self.span = self.tracer.record(
                self.kind, self.track, start, self.env.now,
                trace=self.trace, **self.args,
            )
        return self.span

    def __enter__(self) -> "OpenSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        self.close(**({"error": exc_type.__name__} if exc_type else {}))


class _NullOpenSpan:
    """The disabled open span: close is free, nothing is recorded."""

    __slots__ = ()
    closed = False
    span = None

    def close(self, **more: Any) -> None:
        return None

    def __enter__(self) -> "_NullOpenSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: object,
    ) -> None:
        return None


_NULL_OPEN_SPAN = _NullOpenSpan()


_MASK64 = (1 << 64) - 1


class Tracer:
    """Collects spans and feeds per-kind latency histograms.

    ``label`` (e.g. the RAID level under test) namespaces both the
    tracks (``raidx/node0.disk1``) and a second set of histogram keys
    (``raidx:disk.service``), so one tracer can hold several runs —
    RAID-x vs RAID-5 — side by side for direct comparison.

    ``sample_rate`` < 1.0 turns on deterministic trace sampling: each
    trace id is kept or dropped by a seeded integer hash (no RNG state,
    no draw order), so the same id gets the same decision in every
    process — a sharded sweep samples coherently.  Sampled-out requests
    append no spans but still feed every latency histogram and counter:
    percentiles stay exact over the full population while span memory
    scales with the rate.  Spans recorded without a trace id (background
    flushes, checkpoints) are always kept.
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        label: str = "",
        sample_rate: float = 1.0,
        sample_seed: int = 0,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.spans: List[Span] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.label = label
        self.sample_rate = sample_rate
        self.sample_seed = sample_seed
        self._sample_all = sample_rate >= 1.0
        self._trace_ids = count(1)

    # -- recording -------------------------------------------------------
    def new_trace(self) -> int:
        """A fresh trace id linking the spans of one logical request."""
        return next(self._trace_ids)

    def keeps(self, trace: Optional[int]) -> bool:
        """The deterministic per-trace sampling decision.

        A pure splitmix64-style finalizer over ``trace ^ sample_seed``
        mapped to [0, 1): stateless, order-independent, identical across
        processes.  Untraced spans (``trace is None``) are always kept.
        """
        if trace is None or self._sample_all:
            return True
        x = (trace ^ self.sample_seed) & _MASK64
        x = (x * 0x9E3779B97F4A7C15) & _MASK64
        x ^= x >> 29
        x = (x * 0xBF58476D1CE4E5B9) & _MASK64
        x ^= x >> 32
        return (x >> 11) * 2.0 ** -53 < self.sample_rate

    def record(
        self,
        kind: str,
        track: str,
        start: float,
        end: float,
        trace: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record one completed span and update the latency metrics.

        Metrics are fed unconditionally; the span itself is appended
        only when the trace passes :meth:`keeps` — sampling thins span
        storage, never the statistics.
        """
        label = self.label
        if label:
            track = f"{label}/{track}"
        span = None
        if self._sample_all or self.keeps(trace):
            span = Span(kind, track, start, end, trace, args or None)
            self.spans.append(span)
        duration = end - start
        self.metrics.observe(kind, duration)
        if label:
            self.metrics.observe(f"{label}:{kind}", duration)
        return span

    def observe(self, kind: str, duration: float) -> None:
        """Feed the latency histograms exactly as :meth:`record` would.

        Used where a span's append is elided (a sampled-out request on
        the fast-forward path) but its statistics must still land.
        """
        self.metrics.observe(kind, duration)
        if self.label:
            self.metrics.observe(f"{self.label}:{kind}", duration)

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a registry counter (label-prefixed when a label is set)."""
        if self.label:
            name = f"{self.label}:{name}"
        self.metrics.inc(name, delta)

    def open_span(
        self,
        kind: str,
        track: str,
        env: Any,
        trace: Optional[int] = None,
        **args: Any,
    ) -> OpenSpan:
        """Open a span now (``env.now``); it records when closed."""
        return OpenSpan(self, kind, track, env, trace=trace, **args)

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def kinds(self) -> Set[str]:
        return {s.kind for s in self.spans}

    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def tracks(self) -> List[str]:
        return sorted({s.track for s in self.spans})

    def by_trace(self, trace: int) -> List[Span]:
        return [s for s in self.spans if s.trace == trace]

    def clear(self) -> None:
        self.spans.clear()
        self.metrics.clear()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation sites check :attr:`enabled` before doing any span
    work, so in practice only that flag is ever read; the no-op methods
    exist for code that records unconditionally (tests, examples).
    """

    enabled = False
    spans: tuple = ()
    label = ""
    metrics = None

    def new_trace(self) -> None:
        return None

    def keeps(self, trace: Optional[int]) -> bool:
        return False

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def observe(self, *args: Any, **kwargs: Any) -> None:
        return None

    def count(self, *args: Any, **kwargs: Any) -> None:
        return None

    def open_span(self, *args: Any, **kwargs: Any) -> _NullOpenSpan:
        return _NULL_OPEN_SPAN

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0


#: The process-wide disabled singleton (see :mod:`repro.obs.runtime`).
NULL_TRACER = NullTracer()

"""Always-on load accounting: hardware counters → a MetricsRegistry.

The hardware layer already keeps cheap cumulative counters on every
path, traced or not — :class:`~repro.hardware.disk.DiskStats` (busy
time, bytes, per-disk read/write counts, queue-depth high-water),
:class:`~repro.sim.shared.BandwidthLink` busy time and bytes carried
(CPU work links, SCSI buses, NIC TX/RX) — so "load accounting" costs
the hot path nothing beyond the one compare per disk submit that
maintains the high-water mark.  This module is the *collection* step:
an on-demand sweep of those counters into a
:class:`~repro.obs.metrics.MetricsRegistry`, whose payload form merges
across sweep shards (see ``MetricsRegistry.merge``).

Conventions
-----------
Every name is prefixed ``load.``; per-device names embed the global
device id (``load.disk3.busy_s``, ``load.node1.cpu_busy_s``).  All
per-device figures are *counters* — cumulative seconds, bytes, or op
counts — never ratios: ratios don't merge.  Utilization is derived at
report time against ``load.sim_s`` (summed simulated seconds, so a
merged utilization is the busy-weighted mean across shards).  The one
exception is the queue-depth high-water, which must merge by *max*,
not sum: each disk's high-water is observed into the shared
``load.disk.queue_depth_hw`` histogram, whose merge keeps the exact
max (and the cross-disk distribution for skew reporting).

When the storage system runs with the buffer-cache layer attached
(:mod:`repro.cache`), the sweep also collects per-node cache counters
(``load.nodeN.cache.hits`` / ``.misses`` / ``.fills`` / ``.absorbed``
/ ``.destaged`` / ``.destage_batches`` / ``.lost`` /
``.invalidations`` / ``.evictions``) plus the dirty-block high-water
histogram ``load.cache.dirty_hw`` (max-merge, like queue depth).  Hit
*ratios* are derived at report time via :func:`cache_hit_ratios`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

#: Histogram of per-disk queue-depth high-water marks (merge keeps max).
QUEUE_DEPTH_HW = "load.disk.queue_depth_hw"
#: Histogram of per-disk busy fractions at collection time — the merged
#: distribution is what utilization-skew reporting reads.
DISK_UTIL = "load.disk.util"


def collect_load(cluster: Any, registry: Optional[MetricsRegistry] = None
                 ) -> MetricsRegistry:
    """Sweep a finished cluster's hardware counters into a registry.

    Safe to call repeatedly only on *distinct* registries (counters are
    cumulative adds, so a second sweep into the same registry would
    double-count).
    """
    reg = registry if registry is not None else MetricsRegistry()
    env = cluster.env
    elapsed = env.now
    reg.counter("load.sim_s").value += elapsed
    for d in cluster.all_disks():
        st = d.stats
        base = f"load.disk{d.disk_id}"
        reg.counter(f"{base}.busy_s").value += st.busy_time
        reg.counter(f"{base}.busy_fg_s").value += st.busy_time_foreground
        reg.counter(f"{base}.reads").value += st.reads
        reg.counter(f"{base}.writes").value += st.writes
        reg.counter(f"{base}.bytes").value += st.total_bytes
        reg.observe(QUEUE_DEPTH_HW, st.queue_depth_hw)
        if elapsed > 0:
            reg.observe(DISK_UTIL, min(1.0, st.busy_time / elapsed))
    for node in cluster.nodes:
        base = f"load.node{node.node_id}"
        reg.counter(f"{base}.cpu_busy_s").value += node.cpu._work.busy_time
        reg.counter(f"{base}.scsi_busy_s").value += node.scsi._link.busy_time
        reg.counter(f"{base}.scsi_bytes").value += node.scsi._link.bytes_carried
    for nic in cluster.network.nics:
        base = f"load.nic{nic.node_id}"
        reg.counter(f"{base}.tx_busy_s").value += nic.tx.busy_time
        reg.counter(f"{base}.rx_busy_s").value += nic.rx.busy_time
        reg.counter(f"{base}.tx_bytes").value += nic.bytes_sent
        reg.counter(f"{base}.rx_bytes").value += nic.bytes_received
    storage = getattr(cluster, "storage", None)
    engine = getattr(storage, "engine", None)
    if engine is not None:
        reg.counter("load.fast_submits").value += engine.fast_submits
        reg.counter("load.fast_hits").value += engine.fast_hits
        reg.counter("load.fast_fills").value += engine.fast_fills
        reg.counter("load.phase_submits").value += engine.phase_submits
        reg.counter("load.ff_plan_evictions").value += (
            engine.ff_plan_evictions
        )
        stage = getattr(engine, "cache", None)
        if stage is not None:
            _collect_cache(stage, reg)
    return reg


#: Histogram of per-node dirty-block high-water marks (merge keeps max).
CACHE_DIRTY_HW = "load.cache.dirty_hw"


def _collect_cache(stage: Any, reg: MetricsRegistry) -> None:
    """Sweep the buffer-cache stage's per-node counters.

    Same conventions as the hardware sweep: raw cumulative counts only
    (hit *ratios* are derived at report time, so merged shards give the
    access-weighted ratio), and the dirty-block high-water goes into a
    max-merge histogram.
    """
    for cache in stage.caches:
        st = cache.stats
        base = f"load.node{cache.node_id}.cache"
        reg.counter(f"{base}.hits").value += st.hits
        reg.counter(f"{base}.misses").value += st.misses
        reg.counter(f"{base}.fills").value += st.fills
        reg.counter(f"{base}.absorbed").value += st.write_absorbed
        reg.counter(f"{base}.destaged").value += st.destaged
        reg.counter(f"{base}.destage_batches").value += st.destage_batches
        reg.counter(f"{base}.lost").value += st.lost
        reg.counter(f"{base}.invalidations").value += st.invalidations
        reg.counter(f"{base}.evictions").value += st.evictions
        reg.observe(CACHE_DIRTY_HW, st.dirty_hw)


def cache_hit_ratios(reg: MetricsRegistry) -> Dict[int, float]:
    """{node id: read hit ratio} derived from a (possibly merged)
    registry — hits / (hits + misses), the access-weighted mean across
    shards.  Nodes with no cache traffic are omitted."""
    out: Dict[int, float] = {}
    prefix, suffix = "load.node", ".cache.hits"
    for name in reg.counter_names():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        ident = name[len(prefix):-len(suffix)]
        if not ident.isdigit():
            continue
        hits = reg.counter(name).value
        misses = reg.counter(f"{prefix}{ident}.cache.misses").value
        if hits + misses > 0:
            out[int(ident)] = hits / (hits + misses)
    return out


def disk_utilizations(reg: MetricsRegistry) -> Dict[int, float]:
    """{disk id: busy fraction} derived from a (possibly merged) registry.

    Uses ``load.diskN.busy_s / load.sim_s`` — over merged shards this is
    the busy-weighted mean utilization per disk.
    """
    sim_s = reg.counter("load.sim_s").value
    if not sim_s:
        return {}
    out: Dict[int, float] = {}
    prefix, suffix = "load.disk", ".busy_s"
    for name in reg.counter_names():
        if name.startswith(prefix) and name.endswith(suffix):
            ident = name[len(prefix):-len(suffix)]
            if ident.isdigit():
                out[int(ident)] = min(
                    1.0, reg.counter(name).value / sim_s
                )
    return out


def utilization_skew(reg: MetricsRegistry) -> float:
    """Max/mean per-disk utilization — 1.0 is perfectly even.

    The headline balance figure for ``sc`` rows and reports: RAID-x's
    orthogonal mirror layout should keep it near 1, while skewed
    layouts (or unbalanced mirror-read policies) push it up.
    """
    utils: List[float] = list(disk_utilizations(reg).values())
    if not utils:
        return float("nan")
    mean = sum(utils) / len(utils)
    if mean <= 0:
        return float("nan")
    return max(utils) / mean

"""Span exporters: JSONL logs and Chrome trace-event JSON (Perfetto).

The Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON
Array Format) is understood by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Tracks map onto the format's process/thread
hierarchy:

* a track name ``node0.disk3`` becomes thread ``disk3`` of process
  ``node0`` — so each node renders as one group with its disks, NIC
  directions, CPU, and lock home as horizontal tracks;
* a label prefix (``raidx/node0.disk3``) keeps runs of different RAID
  levels in separate process groups for side-by-side comparison;
* simulated seconds become microseconds (Perfetto's native unit).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs.trace import (
    DISK_QUEUE_WAIT,
    DISK_SERVICE,
    NET_RX,
    NET_TX,
    SCSI_TRANSFER,
    Span,
)


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write one JSON object per span; returns the span count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def _track_ids(spans: List[Span]) -> Dict[str, Tuple[int, int, str, str]]:
    """{track: (pid, tid, process_name, thread_name)} for all tracks."""
    out: Dict[str, Tuple[int, int, str, str]] = {}
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, str], int] = {}
    for track in sorted({s.track for s in spans}):
        proc, _, thread = track.partition(".")
        if not thread:
            proc, thread = track, track
        pid = pids.setdefault(proc, len(pids) + 1)
        tid = tids.setdefault((pid, thread), len(tids) + 1)
        out[track] = (pid, tid, proc, thread)
    return out


#: Link kinds whose per-track concurrency renders as a utilization
#: counter track (occupancy 0/1 for a serial link, >1 under overlap).
_LINK_KINDS = frozenset((NET_TX, NET_RX, SCSI_TRANSFER))


def counter_track_events(
    spans: List[Span], tracks: Dict[str, Tuple[int, int, str, str]]
) -> List[dict]:
    """Perfetto counter tracks (``"ph": "C"``) derived from the spans.

    Two families, both reconstructed purely from recorded spans so they
    work on sampled traces too (a sampled counter is a coherent
    sub-population — whole traces are kept or dropped):

    * ``<disk>.queue_depth`` — per-disk outstanding requests.  A request
      occupies the queue from its queue-wait start (its service start
      when it never waited) to its service end; the counter steps at
      each edge.
    * ``<link>.occupancy`` — NIC TX/RX and SCSI bus concurrency: +1 at
      each transfer span's start, −1 at its end.
    """
    # {track: [(time, delta), ...]} edge lists.
    edges: Dict[str, List[Tuple[float, int]]] = {}
    names: Dict[str, str] = {}
    # Disk queue depth: join a trace's wait+service spans on one track
    # into a single occupancy interval.
    intervals: Dict[Tuple[str, object], List[float]] = {}
    untraced = 0
    for s in spans:
        if s.kind == DISK_SERVICE or s.kind == DISK_QUEUE_WAIT:
            if s.trace is None:
                untraced += 1
                key = (s.track, ("u", untraced))
            else:
                key = (s.track, s.trace)
            iv = intervals.get(key)
            if iv is None:
                intervals[key] = [s.start, s.end]
            else:
                if s.start < iv[0]:
                    iv[0] = s.start
                if s.end > iv[1]:
                    iv[1] = s.end
            names[s.track] = "queue_depth"
        elif s.kind in _LINK_KINDS:
            edges.setdefault(s.track, []).append((s.start, 1))
            edges[s.track].append((s.end, -1))
            names[s.track] = "occupancy"
    for (track, _key), (lo, hi) in intervals.items():
        edges.setdefault(track, []).append((lo, 1))
        edges[track].append((hi, -1))
    events: List[dict] = []
    for track in sorted(edges):
        ids = tracks.get(track)
        if ids is None:
            continue
        pid, _tid, _proc, thread = ids
        name = f"{thread}.{names[track]}"
        value = 0
        last_ts = None
        # Descending delta at equal times: the +1 of a back-to-back
        # arrival lands before the -1 of the departure, so the counter
        # never dips below the true depth at a shared timestamp.
        for ts, delta in sorted(
            edges[track], key=lambda e: (e[0], -e[1])
        ):
            value += delta
            ts_us = ts * 1e6
            if last_ts is not None and ts_us == last_ts:
                events[-1]["args"]["value"] = value
                continue
            last_ts = ts_us
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "name": name,
                    "ts": ts_us,
                    "args": {"value": value},
                }
            )
    return events


def chrome_trace_events(
    spans: Iterable[Span], counters: bool = True
) -> List[dict]:
    """Spans as a list of Chrome trace events (metadata first).

    With ``counters`` (the default), per-disk queue-depth and per-link
    occupancy counter tracks (see :func:`counter_track_events`) are
    appended after the duration events.
    """
    spans = list(spans)
    tracks = _track_ids(spans)
    events: List[dict] = []
    seen_procs = set()
    for pid, tid, proc, thread in sorted(tracks.values()):
        if pid not in seen_procs:
            seen_procs.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": proc},
                }
            )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": thread},
            }
        )
    for span in spans:
        pid, tid, _proc, _thread = tracks[span.track]
        args = dict(span.args) if span.args else {}
        if span.trace is not None:
            args["trace"] = span.trace
        event = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": span.kind,
            "cat": span.kind.partition(".")[0],
            "ts": span.start * 1e6,
            "dur": max(0.0, span.end - span.start) * 1e6,
        }
        if args:
            event["args"] = args
        events.append(event)
    if counters:
        events.extend(counter_track_events(spans, tracks))
    return events


def write_chrome_trace(spans: Iterable[Span], path: str) -> dict:
    """Write a Perfetto-loadable trace JSON; returns the document."""
    doc = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc

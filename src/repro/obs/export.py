"""Span exporters: JSONL logs and Chrome trace-event JSON (Perfetto).

The Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON
Array Format) is understood by Perfetto (https://ui.perfetto.dev) and
``chrome://tracing``.  Tracks map onto the format's process/thread
hierarchy:

* a track name ``node0.disk3`` becomes thread ``disk3`` of process
  ``node0`` — so each node renders as one group with its disks, NIC
  directions, CPU, and lock home as horizontal tracks;
* a label prefix (``raidx/node0.disk3``) keeps runs of different RAID
  levels in separate process groups for side-by-side comparison;
* simulated seconds become microseconds (Perfetto's native unit).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs.trace import Span


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write one JSON object per span; returns the span count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
            n += 1
    return n


def _track_ids(spans: List[Span]) -> Dict[str, Tuple[int, int, str, str]]:
    """{track: (pid, tid, process_name, thread_name)} for all tracks."""
    out: Dict[str, Tuple[int, int, str, str]] = {}
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, str], int] = {}
    for track in sorted({s.track for s in spans}):
        proc, _, thread = track.partition(".")
        if not thread:
            proc, thread = track, track
        pid = pids.setdefault(proc, len(pids) + 1)
        tid = tids.setdefault((pid, thread), len(tids) + 1)
        out[track] = (pid, tid, proc, thread)
    return out


def chrome_trace_events(spans: Iterable[Span]) -> List[dict]:
    """Spans as a list of Chrome trace events (metadata first)."""
    spans = list(spans)
    tracks = _track_ids(spans)
    events: List[dict] = []
    seen_procs = set()
    for pid, tid, proc, thread in sorted(tracks.values()):
        if pid not in seen_procs:
            seen_procs.add(pid)
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": proc},
                }
            )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": thread},
            }
        )
    for span in spans:
        pid, tid, _proc, _thread = tracks[span.track]
        args = dict(span.args) if span.args else {}
        if span.trace is not None:
            args["trace"] = span.trace
        event = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": span.kind,
            "cat": span.kind.partition(".")[0],
            "ts": span.start * 1e6,
            "dur": max(0.0, span.end - span.start) * 1e6,
        }
        if args:
            event["args"] = args
        events.append(event)
    return events


def write_chrome_trace(spans: Iterable[Span], path: str) -> dict:
    """Write a Perfetto-loadable trace JSON; returns the document."""
    doc = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return doc

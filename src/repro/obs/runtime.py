"""The process-wide tracer slot the instrumentation sites read.

Hot paths do::

    from repro.obs import runtime as _obs
    ...
    tr = _obs.TRACER
    if tr.enabled:
        tr.record(...)

— one module-attribute read plus one branch when tracing is off.  The
slot is deliberately global (not per-cluster): a simulation process is
single-threaded, parallel sweep workers each get their own interpreter
(and hence their own slot), and threading a tracer handle through every
constructor would touch far more of the request path than the spans do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

#: The active tracer.  ``NULL_TRACER`` (enabled=False) when tracing is off.
TRACER: Union[Tracer, NullTracer] = NULL_TRACER


def install(
    tracer: Optional[Tracer] = None,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer.

    ``sample_rate``/``sample_seed`` configure deterministic trace
    sampling on the freshly built tracer (ignored when ``tracer`` is
    passed in — it already carries its own sampling policy).
    """
    global TRACER
    if tracer is None:
        tracer = Tracer(sample_rate=sample_rate, sample_seed=sample_seed)
    TRACER = tracer
    return tracer


def current() -> Union[Tracer, NullTracer]:
    """The active tracer (the NULL tracer when tracing is off)."""
    return TRACER


def reset() -> None:
    """Disable tracing (restore the NULL tracer)."""
    global TRACER
    TRACER = NULL_TRACER


@contextmanager
def tracing(
    tracer: Optional[Tracer] = None,
    sample_rate: float = 1.0,
    sample_seed: int = 0,
) -> Iterator[Tracer]:
    """Context manager: install a tracer, restore the previous on exit."""
    global TRACER
    previous = TRACER
    active = install(
        tracer, sample_rate=sample_rate, sample_seed=sample_seed
    )
    try:
        yield active
    finally:
        TRACER = previous

"""T3 — Table 3: achievable bandwidth and 12-over-1-client improvement.

Regenerates the endpoint measurements and the improvement factors; the
paper's headline is RAID-x's ~5.7x improvement on large writes and the
strongest overall scaling among the four subsystems.
"""

from conftest import emit, run_once

from repro.bench.experiments import table3_improvement


def test_table3_improvement(benchmark):
    result = run_once(
        benchmark,
        table3_improvement,
        archs=("nfs", "raid5", "raid10", "raidx"),
        endpoints=(1, 12),
    )
    emit("Table 3 — bandwidth and improvement factors", result.render())

    def imp(arch, op):
        return result.filter(architecture=arch, operation=op).rows[0][
            "improvement"
        ]

    # RAID-x improves most on writes; almost-3x-or-better on reads.
    assert imp("raidx", "large_write") > 3.0
    assert imp("raidx", "large_read") > 2.5
    # NFS barely improves anywhere (central server).
    for op in ("large_read", "large_write", "small_write"):
        assert imp("nfs", op) < 2.0
    # RAID-x's write improvement beats RAID-10's and RAID-5's.
    assert imp("raidx", "large_write") >= imp("raid10", "large_write")
    benchmark.extra_info["raidx_lw_improvement"] = imp(
        "raidx", "large_write"
    )

"""A9 — extension: storage-manager service-slot sensitivity.

The main simulations execute remote manager work inline, which is
timing-equivalent to a server with unbounded concurrency.  This bench
runs the *explicit* storage-manager servers (``cdd_mode="server"``) and
sweeps the per-node service-slot count, validating the inline
simplification (many slots ⇒ inline-equivalent bandwidth) and showing
where a thread-starved manager would start queueing.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB, MS
from repro.workloads.parallel_io import ParallelIOWorkload

SLOTS = (1, 4, 16, 64)


def measure(mode, slots=8):
    cluster = build_cluster(
        trojans_cluster(),
        architecture="raidx",
        cdd_mode=mode,
        cdd_service_slots=slots,
    )
    r = ParallelIOWorkload(cluster, 12, op="write", size=1 * MB).run()
    wait = 0.0
    if cluster.manager_servers:
        waits = [
            s.mean_wait() for s in cluster.manager_servers if s.served
        ]
        wait = max(waits, default=0.0)
    return r.aggregate_bandwidth_mb_s, wait


def run_sweep():
    rows = []
    inline_bw, _ = measure("inline")
    rows.append(
        {"configuration": "inline (reference)",
         "write_mb_s": round(inline_bw, 2), "max_mean_wait_ms": 0.0}
    )
    for slots in SLOTS:
        bw, wait = measure("server", slots)
        rows.append(
            {
                "configuration": f"server, {slots} slots",
                "write_mb_s": round(bw, 2),
                "max_mean_wait_ms": round(wait / MS, 2),
            }
        )
    return rows


def test_server_slots(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A9 — storage-manager service slots (12-client writes)",
        render_table(
            ["configuration", "write_mb_s", "max_mean_wait_ms"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    inline = rows[0]["write_mb_s"]
    by_slots = {s: rows[i + 1] for i, s in enumerate(SLOTS)}
    # Enough slots ⇒ the explicit server matches the inline model.
    assert by_slots[64]["write_mb_s"] > 0.85 * inline
    # A starved manager queues and loses bandwidth.
    assert (
        by_slots[1]["max_mean_wait_ms"]
        > by_slots[64]["max_mean_wait_ms"]
    )
    assert by_slots[1]["write_mb_s"] <= by_slots[64]["write_mb_s"] * 1.02
    benchmark.extra_info["inline_vs_64slots"] = round(
        by_slots[64]["write_mb_s"] / inline, 3
    )

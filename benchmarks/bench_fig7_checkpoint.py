"""F7 — Figure 7: striped checkpointing with staggering.

Regenerates the checkpoint-schedule comparison on RAID-x: epoch wall
clock, sync overhead (S), per-process checkpoint overhead (C), and the
recovery-time split (transient via the local mirror vs permanent via
striped reads) — the C/S trade-off of the figure.
"""

from conftest import emit, run_once

from repro.bench.experiments import fig7_checkpoint
from repro.units import MB

SCHEMES = (
    ("parallel", None),
    ("striped_staggered", 2),
    ("striped_staggered", 3),
    ("striped_staggered", 4),
    ("staggered", None),
)


def test_fig7_checkpoint(benchmark):
    result = run_once(
        benchmark,
        fig7_checkpoint,
        schemes=SCHEMES,
        processes=12,
        state_bytes=4 * MB,
    )
    emit("Figure 7 — striped + staggered checkpointing", result.render())

    rows = {
        (r["scheme"], r["groups"]): r for r in result.rows
    }
    par = rows[("parallel", 1)]
    st3 = rows[("striped_staggered", 3)]
    full = rows[("staggered", 1)]

    # Epoch wall clock grows with staggering depth...
    assert par["epoch_s"] < st3["epoch_s"] < full["epoch_s"]
    # ...while each process's own checkpoint overhead C shrinks (its
    # writes run with less contention) — the figure's trade-off.
    assert full["mean_C_s"] < st3["mean_C_s"] < par["mean_C_s"]
    # Sync overhead S is small and schedule-independent.
    assert par["sync_ms"] < 100
    # Recovery: the local mirror beats degraded striped reads.
    assert st3["recov_transient_ms"] < st3["recov_permanent_ms"]

    benchmark.extra_info["parallel_epoch_s"] = par["epoch_s"]
    benchmark.extra_info["staggered3_mean_C_s"] = st3["mean_C_s"]

"""Buffer-cache benchmark: hit-ratio sweep and RMW-absorption payoff.

Measures the :mod:`repro.cache` layer on the workload it exists for —
a Zipf-hotspot open-loop stream whose hot set fits in memory — at
three cache sizes plus a cache-off baseline, and a partial-stripe
RAID-5 write stream where write-back absorption should eliminate most
old-data pre-reads.

Two kinds of figures come out of one run per scenario:

* **simulation facts** (deterministic): read hit ratio, disk read/write
  op counts, destage batches — these are what the cache claims to
  improve, and what ``tests/test_cache_smoke.py`` asserts on;
* **simulator throughput** (wall clock): events/sec pushed through the
  kernel with the cache stage in the request path, floored by
  ``BENCH_cache_floors.json`` like every other hot path.

Run standalone::

    python benchmarks/bench_cache.py             # print a table
    python benchmarks/bench_cache.py --json BENCH_cache.json
    python benchmarks/bench_cache.py --scale 0.25   # quick run
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, Optional, Tuple

from repro.cache import CacheConfig
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.hardware import node as node_mod
from repro.units import KiB
from repro.workloads.openloop import OpenLoopWorkload

#: Simulation facts recorded by the most recent run of each scenario
#: (scenario functions return the event count so ``measure`` can time
#: them; the facts ride along here).
RUN_STATS: Dict[str, Dict] = {}

_ZIPF_SIZES = {"small": 32, "medium": 128, "large": 512}


def _zipf_point(
    cache_blocks: Optional[int], requests: int
) -> Tuple[int, Dict]:
    """One Zipf-hotspot open-loop point: mixed 70/30 read/write."""
    cache = (
        CacheConfig(capacity_blocks=cache_blocks, destage_batch=32)
        if cache_blocks
        else None
    )
    cluster = build_cluster(
        trojans_cluster(n=4), architecture="raidx", cache=cache
    )
    OpenLoopWorkload(
        cluster,
        rate_ops_per_s=400.0,
        duration_s=None,
        n_requests=requests,
        op="mixed",
        read_fraction=0.7,
        op_size=32 * KiB,
        scenario="zipf",
        region_bytes=64_000_000,
        placement="roundrobin",
        seed=7,
    ).run()
    cluster.env.run(cluster.env.process(cluster.storage.drain()))
    stats = {
        "cache_blocks": cache_blocks or 0,
        "disk_reads": sum(d.stats.reads for d in cluster.all_disks()),
        "disk_writes": sum(d.stats.writes for d in cluster.all_disks()),
        "hit_ratio": 0.0,
    }
    stage = cluster.storage.engine.cache
    if stage is not None:
        hits = sum(c.stats.hits for c in stage.caches)
        misses = sum(c.stats.misses for c in stage.caches)
        stats["hit_ratio"] = hits / max(1, hits + misses)
        stats["destage_batches"] = sum(
            c.stats.destage_batches for c in stage.caches
        )
        stats["lost"] = sum(c.stats.lost for c in stage.caches)
    return cluster.env.processed_events, stats


def _ff_ab_point(node_ff: bool, requests: int) -> Tuple[int, Dict]:
    """High-hit Zipf point with the node fast-forward toggled (PR 10).

    The hot set (a 16 MB region, ~500 blocks) fits in a 512-block
    cache and the stream is read-only, so the cache never holds dirty
    blocks: after warm-up every resident read is a fast-forward hit
    and every miss is a fast-forward clean fill
    (``placement="local"`` keeps each fill on the client's own disk —
    the only geometry the single-piece fill path prices).  ``node_ff=False`` is
    the pre-PR-10 behaviour — a cache stage vetoed the fast path
    outright — so the pair prices exactly what the closed-form
    hit/fill execution buys.  Byte-identity of the two simulations is
    asserted by ``tests/cluster/test_cache_ff_equivalence.py``; here
    only the wall clock differs.
    """
    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = node_ff
    try:
        cluster = build_cluster(
            trojans_cluster(n=4),
            architecture="raidx",
            cache=CacheConfig(capacity_blocks=512, destage_batch=32),
        )
    finally:
        node_mod.NODE_FAST_FORWARD = old
    OpenLoopWorkload(
        cluster,
        rate_ops_per_s=400.0,
        duration_s=None,
        n_requests=requests,
        op="read",
        op_size=32 * KiB,
        scenario="zipf",
        region_bytes=16_000_000,
        placement="local",
        seed=7,
    ).run()
    cluster.env.run(cluster.env.process(cluster.storage.drain()))
    engine = cluster.storage.engine
    stage = engine.cache
    hits = sum(c.stats.hits for c in stage.caches)
    misses = sum(c.stats.misses for c in stage.caches)
    submits = engine.fast_submits + engine.phase_submits
    stats = {
        "node_ff": node_ff,
        "requests": requests,
        "hit_ratio": hits / max(1, hits + misses),
        "fast_submits": engine.fast_submits,
        "fast_hits": engine.fast_hits,
        "fast_fills": engine.fast_fills,
        "phase_submits": engine.phase_submits,
        "ff_fraction": engine.fast_submits / max(1, submits),
        "disk_reads": sum(d.stats.reads for d in cluster.all_disks()),
        "disk_writes": sum(d.stats.writes for d in cluster.all_disks()),
    }
    return cluster.env.processed_events, stats


def _rmw_point(cached: bool, requests: int) -> Tuple[int, Dict]:
    """Partial-stripe RAID-5 writes: half-block ops, Zipf hot spot.

    Every uncached write pays the old-data + old-parity pre-reads; the
    cached run fills once per cold block, absorbs rewrites, and
    destages with the old-data read dropped (RMW absorption) — disk
    reads per logical write is the figure of merit.
    """
    cache = (
        CacheConfig(capacity_blocks=1024, destage_batch=32)
        if cached
        else None
    )
    cluster = build_cluster(
        trojans_cluster(n=4), architecture="raid5", cache=cache
    )
    OpenLoopWorkload(
        cluster,
        rate_ops_per_s=400.0,
        duration_s=None,
        n_requests=requests,
        op="write",
        op_size=16 * KiB,
        scenario="zipf",
        region_bytes=64_000_000,
        placement="roundrobin",
        seed=7,
    ).run()
    cluster.env.run(cluster.env.process(cluster.storage.drain()))
    stats = {
        "cached": cached,
        "disk_reads": sum(d.stats.reads for d in cluster.all_disks()),
        "disk_writes": sum(d.stats.writes for d in cluster.all_disks()),
        "reads_per_write": (
            sum(d.stats.reads for d in cluster.all_disks()) / requests
        ),
    }
    return cluster.env.processed_events, stats


def _zipf_scenario(name: str, cache_blocks: Optional[int]):
    def run(requests: int = 4_000) -> int:
        events, stats = _zipf_point(cache_blocks, requests)
        RUN_STATS[name] = stats
        return events

    run.__name__ = name
    return run


def _rmw_scenario(name: str, cached: bool):
    def run(requests: int = 2_000) -> int:
        events, stats = _rmw_point(cached, requests)
        RUN_STATS[name] = stats
        return events

    run.__name__ = name
    return run


def _ff_scenario(name: str, node_ff: bool):
    def run(requests: int = 8_000) -> int:
        events, stats = _ff_ab_point(node_ff, requests)
        RUN_STATS[name] = stats
        return events

    run.__name__ = name
    return run


SCENARIOS: Dict[str, Callable[..., int]] = {
    "zipf_uncached": _zipf_scenario("zipf_uncached", None),
    **{
        f"zipf_cache_{label}": _zipf_scenario(
            f"zipf_cache_{label}", blocks
        )
        for label, blocks in _ZIPF_SIZES.items()
    },
    "rmw_uncached": _rmw_scenario("rmw_uncached", False),
    "rmw_cached": _rmw_scenario("rmw_cached", True),
    "zipf_ff_phase": _ff_scenario("zipf_ff_phase", False),
    "zipf_ff_fast": _ff_scenario("zipf_ff_fast", True),
}


# -- measurement --------------------------------------------------------


def measure(name: str, scale: float = 1.0, repeats: int = 3) -> Dict:
    """Best-of-N wall-clock measurement of one scenario.

    The scenario's simulation facts (hit ratio, disk op counts) are
    merged into the returned dict — they are identical across repeats
    because the simulation is deterministic.
    """
    fn = SCENARIOS[name]
    kwargs = {}
    if scale != 1.0:
        import inspect

        for pname, param in inspect.signature(fn).parameters.items():
            kwargs[pname] = max(1, int(param.default * scale))
    best = float("inf")
    events = 0
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = fn(**kwargs)
            dt = time.perf_counter() - t0
            best = min(best, dt)
    except Exception as exc:
        return {"error": f"{type(exc).__name__}: {exc}"}
    out = {
        "events": events,
        "seconds": best,
        "events_per_sec": events / best if best > 0 else 0.0,
        **RUN_STATS.get(name, {}),
    }
    if "requests" in out and best > 0:
        out["requests_per_sec"] = out["requests"] / best
    return out


def sweep(scale: float = 1.0, repeats: int = 3) -> Dict:
    """All scenarios plus the two headline summaries."""
    results = {
        name: measure(name, scale=scale, repeats=repeats)
        for name in SCENARIOS
    }
    summary = {
        "hit_ratio_by_capacity": {
            str(results[f"zipf_cache_{label}"].get("cache_blocks")):
                results[f"zipf_cache_{label}"].get("hit_ratio")
            for label in _ZIPF_SIZES
        },
        "rmw_reads_per_write": {
            "uncached": results["rmw_uncached"].get("reads_per_write"),
            "cached": results["rmw_cached"].get("reads_per_write"),
        },
    }
    fast = results["zipf_ff_fast"]
    phase = results["zipf_ff_phase"]
    if fast.get("seconds") and phase.get("seconds"):
        summary["cache_ff_speedup"] = phase["seconds"] / fast["seconds"]
        summary["cache_ff_fraction"] = fast.get("ff_fraction")
    return {"scale": scale, "scenarios": results, "summary": summary}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--json", metavar="PATH", default=None)
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--repeats", type=int, default=3)
    args = ap.parse_args(argv)
    doc = sweep(scale=args.scale, repeats=args.repeats)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
    w = max(len(n) for n in SCENARIOS)
    for name, r in doc["scenarios"].items():
        if "error" in r:
            print(f"{name:{w}s}  ERROR {r['error']}")
            continue
        extra = ""
        if "hit_ratio" in r:
            extra = f"  hit_ratio={r['hit_ratio']:.4f}"
        if "reads_per_write" in r:
            extra += f"  reads/write={r['reads_per_write']:.3f}"
        if "requests_per_sec" in r:
            extra += f"  req/s={r['requests_per_sec']:,.0f}"
        if "ff_fraction" in r:
            extra += f"  ff={r['ff_fraction']:.3f}"
        print(
            f"{name:{w}s}  {r['events_per_sec']:>12,.0f} events/s"
            f"  reads={r['disk_reads']:>7d}{extra}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A12 — extension: striping-unit sensitivity.

The Trojans cluster used 32 KiB blocks.  This sweep varies the striping
unit (16/32/64/128 KiB) for RAID-x under the Fig.-5 workloads: small
units buy parallelism per request but pay per-block overheads (seek +
protocol per op); large units amortize overheads but serialize a
request onto fewer disks.  The classic RAID-tuning curve.
"""

from dataclasses import replace

from conftest import emit, env_workers, run_once

from repro.analysis.report import render_table
from repro.bench.harness import sweep
from repro.cluster.cluster import build_cluster
from repro.config import ArrayGeometry, trojans_cluster
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload

BLOCK_SIZES = (16 * KiB, 32 * KiB, 64 * KiB, 128 * KiB)


def measure(block_size):
    cfg = trojans_cluster()
    cfg = replace(
        cfg, geometry=ArrayGeometry(n=12, k=1, block_size=block_size)
    )
    out = {}
    for clients, label in ((12, "lw12"), (1, "lw1")):
        cluster = build_cluster(cfg, architecture="raidx")
        r = ParallelIOWorkload(
            cluster, clients, op="write", size=2 * MB
        ).run()
        out[label] = r.aggregate_bandwidth_mb_s
    return out


def _point(block_kib):
    m = measure(block_kib * KiB)
    return {
        "write_12cl_mb_s": round(m["lw12"], 2),
        "write_1cl_mb_s": round(m["lw1"], 2),
    }


def run_sweep(workers=None):
    result = sweep(
        "blocksize",
        _point,
        {"block_kib": [bs // KiB for bs in BLOCK_SIZES]},
        workers=workers if workers is not None else env_workers(),
    )
    return result.rows


def test_blocksize_sensitivity(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A12 — striping-unit sensitivity (RAID-x large writes)",
        render_table(
            ["block_kib", "write_12cl_mb_s", "write_1cl_mb_s"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by = {r["block_kib"]: r for r in rows}
    # Larger units amortize per-op overhead under full load...
    assert by[128]["write_12cl_mb_s"] > by[16]["write_12cl_mb_s"]
    # ...and the paper's 32 KiB choice sits on the flat part of the
    # curve (within 2.5x of the best across this whole sweep).
    best = max(r["write_12cl_mb_s"] for r in rows)
    assert by[32]["write_12cl_mb_s"] > best / 2.5
    benchmark.extra_info["curve"] = {
        r["block_kib"]: r["write_12cl_mb_s"] for r in rows
    }

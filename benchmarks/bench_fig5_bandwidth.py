"""F5 — Figure 5: aggregate I/O bandwidth vs number of clients.

Four panels (large/small × read/write) over NFS, RAID-5, RAID-10, and
RAID-x on the 12-node Trojans configuration.  Asserts the scaling shapes
reported in §5.1.
"""

from conftest import emit, run_once

from repro.bench.experiments import (
    FIG5_CLIENTS,
    FIG_ARCHS,
    fig5_bandwidth,
    render_fig5,
)


def test_fig5_bandwidth(benchmark):
    result = run_once(
        benchmark,
        fig5_bandwidth,
        archs=FIG_ARCHS,
        client_counts=FIG5_CLIENTS,
    )
    emit("Figure 5 — aggregate I/O bandwidth (MB/s)", render_fig5(result))

    def series(workload, arch):
        return result.filter(
            workload=workload, architecture=arch
        ).pivot("architecture", "clients", "mb_s")[arch]

    max_cl = max(FIG5_CLIENTS)

    # (a) Large reads: distributed arrays scale; NFS flattens early.
    for arch in ("raid5", "raid10", "raidx"):
        s = series("large_read", arch)
        assert s[max_cl] > 2.5 * s[1]
    nfs_lr = series("large_read", "nfs")
    assert nfs_lr[max_cl] < 1.6 * nfs_lr[1]

    # (c) Large writes: RAID-x best scalability, RAID-5 worst among the
    # arrays (parity overhead), NFS flat and lowest.
    lw = {a: series("large_write", a) for a in FIG_ARCHS}
    assert lw["raidx"][max_cl] > lw["raid10"][max_cl] > lw["raid5"][max_cl]
    assert lw["raid5"][max_cl] > lw["nfs"][max_cl]

    # (d) Small writes: RAID-x ~3x RAID-5 (the small-write problem).
    sw = {a: series("small_write", a) for a in FIG_ARCHS}
    assert sw["raidx"][max_cl] > 2.0 * sw["raid5"][max_cl]

    # (b) Small reads: close to large-read behaviour for the arrays.
    sr = {a: series("small_read", a) for a in ("raid10", "raidx")}
    assert sr["raidx"][max_cl] > 0.5 * sr["raid10"][max_cl]

    benchmark.extra_info["raidx_large_write_12cl"] = lw["raidx"][max_cl]
    benchmark.extra_info["raid5_large_write_12cl"] = lw["raid5"][max_cl]
    benchmark.extra_info["nfs_large_read_12cl"] = nfs_lr[max_cl]

"""F3 — Figure 3: the 4×3 orthogonal striping and mirroring array.

Regenerates the 12-disk map and asserts the addressing scheme shown in
the figure (block i on disk i mod 12; pipelined stripe groups; one
failure per disk group survivable).
"""

from conftest import emit, run_once

from repro.bench.experiments import fig3_nk_map
from repro.raid import make_layout


def test_fig3_nk_array(benchmark):
    text = run_once(benchmark, fig3_nk_map, n=4, k=3)
    emit("Figure 3 — 4x3 RAID-x array", text)

    lay = make_layout(
        "raidx", n_disks=12, block_size=1, disk_capacity=8, stripe_width=4
    )
    # "The block addressing scheme stripes across all nk disks
    # sequentially and repeatedly."
    for b in range(24):
        assert lay.data_location(b).disk == b % 12
    # Stripe group (B0..B3) on the first disk of each node; the next
    # group (B4..B7) pipelines onto each node's second disk.
    assert [lay.data_location(b).disk for b in range(4)] == [0, 1, 2, 3]
    assert [lay.data_location(b).disk for b in range(4, 8)] == [4, 5, 6, 7]
    # "Up-to-3 disk failures in 3 stripe groups can be tolerated."
    assert lay.max_fault_coverage() == 3
    assert lay.tolerates({1, 6, 8})
    assert not lay.tolerates({1, 2})
    benchmark.extra_info["fault_coverage"] = 3

"""T2 — Table 2: expected peak performance of four RAID architectures.

Regenerates the closed-form table (formulas + values) for the Trojans
parameters and checks the relations the paper states in §2.
"""

from conftest import emit, run_once

from repro.analysis.peak import (
    PeakModel,
    peak_table,
    write_improvement_over_chained,
)
from repro.bench.experiments import table2_peak


def test_table2_peak(benchmark):
    text = run_once(benchmark, table2_peak, n=12, B=10.0, m=64)
    emit("Table 2 — expected peak performance", text)

    table = peak_table(PeakModel(n=12, B=10.0, m=64, R=3.2e-3, W=3.2e-3))
    # RAID-x matches RAID-0-class bandwidth while mirrored systems halve
    # writes and RAID-5 quarters small writes.
    assert table["raidx"]["max_bw_large_write"] == 120
    assert table["raid10"]["max_bw_large_write"] == 60
    assert table["raid5"]["max_bw_small_write"] == 30
    # §2: "the improvement factor approaches two" for large arrays.
    assert 1.5 < write_improvement_over_chained(12) < 2.0
    assert write_improvement_over_chained(200) > 1.98
    benchmark.extra_info["raidx_write_bw"] = table["raidx"][
        "max_bw_large_write"
    ]

"""A10 — extension: response time vs offered load (open loop).

Poisson small-write arrivals swept across rates produce each
architecture's latency hockey-stick.  The deferred-mirroring claim in
latency form: at every offered load, RAID-x answers small writes faster
than RAID-10 (write-through mirror) and far faster than RAID-5 (RMW),
and it saturates last.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MS
from repro.workloads.openloop import OpenLoopWorkload

ARCHS = ("raid5", "raid10", "raidx")
RATES = (100, 400, 1000)


def measure(arch, rate):
    cluster = build_cluster(trojans_cluster(), architecture=arch)
    return OpenLoopWorkload(
        cluster, rate_ops_per_s=rate, duration_s=0.5, op="write"
    ).run()


def run_sweep():
    rows = []
    for arch in ARCHS:
        for rate in RATES:
            r = measure(arch, rate)
            rows.append(
                {
                    "architecture": arch,
                    "offered_ops_s": rate,
                    "mean_ms": round(r.mean_latency() / MS, 1),
                    "p95_ms": round(r.p95_latency() / MS, 1),
                    "saturated": r.saturated,
                }
            )
    return rows


def test_latency_curves(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A10 — small-write response time vs offered load",
        render_table(
            ["architecture", "offered_ops_s", "mean_ms", "p95_ms",
             "saturated"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by = {(r["architecture"], r["offered_ops_s"]): r for r in rows}
    # RAID-x is the fastest responder at every load level.
    for rate in RATES:
        assert (
            by[("raidx", rate)]["mean_ms"]
            < by[("raid10", rate)]["mean_ms"]
            < by[("raid5", rate)]["mean_ms"] * 1.5
        )
    # Latency is monotone in offered load (queueing).
    for arch in ARCHS:
        series = [by[(arch, r)]["mean_ms"] for r in RATES]
        assert series == sorted(series)
    # RAID-5 saturates at a load RAID-x still absorbs comfortably.
    assert by[("raid5", 400)]["saturated"]
    assert by[("raidx", 400)]["mean_ms"] < by[("raid5", 400)]["mean_ms"] / 3
    benchmark.extra_info["raidx_mean_at_1000ops"] = by[("raidx", 1000)][
        "mean_ms"
    ]

"""A3 — ablation: per-disk queue discipline.

Two levels:

* **micro** — one disk, a deep queue of scattered block reads: the
  regime where reordering pays (SSTF/LOOK cut seek time sharply);
* **system** — the full cluster under the Fig.-5 write workload, where
  the striped stream arrives in nearly ascending disk order, so FIFO
  already preserves sequential runs and geometric reordering cannot
  improve on it — itself a finding about why distributed striping and
  local disk scheduling interact.
"""

import numpy as np
from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import DiskParams, trojans_cluster
from repro.hardware.disk import Disk
from repro.io.scheduler import make_scheduler
from repro.sim import Environment
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload

POLICIES = ("fifo", "sstf", "look")


def micro(policy, n_requests=64, seed=7):
    rng = np.random.default_rng(seed)
    offsets = rng.integers(0, 9000, size=n_requests) * MB
    env = Environment()
    disk = Disk(env, DiskParams(), scheduler=make_scheduler(policy))
    events = [disk.read(int(o), 32 * KiB) for o in offsets]

    def waiter(env):
        yield env.all_of(events)

    env.process(waiter(env))
    env.run()
    return env.now, disk.stats.seek_time


def system(policy):
    cluster = build_cluster(
        trojans_cluster(), architecture="raidx", scheduler_policy=policy
    )
    r = ParallelIOWorkload(cluster, 12, op="write", size=1 * MB).run()
    return r.aggregate_bandwidth_mb_s


def run_sweep():
    rows = []
    for policy in POLICIES:
        makespan, seek = micro(policy)
        rows.append(
            {
                "policy": policy,
                "micro_makespan_s": round(makespan, 3),
                "micro_seek_s": round(seek, 3),
                "system_write_mb_s": round(system(policy), 2),
            }
        )
    return rows


def test_ablation_scheduler(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A3 — disk scheduling policy",
        render_table(
            ["policy", "micro_makespan_s", "micro_seek_s",
             "system_write_mb_s"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by = {r["policy"]: r for r in rows}
    # Reordering pays off sharply on a deep scattered queue...
    assert by["sstf"]["micro_makespan_s"] < 0.8 * (
        by["fifo"]["micro_makespan_s"]
    )
    assert by["look"]["micro_seek_s"] < by["fifo"]["micro_seek_s"]
    # ...while at system level the striped write stream arrives in
    # nearly ascending order, so FIFO preserves the sequential runs and
    # geometric reordering cannot beat it (and may break runs up).
    sys_bw = [r["system_write_mb_s"] for r in rows]
    assert by["fifo"]["system_write_mb_s"] >= max(sys_bw) * 0.99
    assert max(sys_bw) / min(sys_bw) < 1.6
    benchmark.extra_info["micro_speedup_sstf"] = round(
        by["fifo"]["micro_makespan_s"] / by["sstf"]["micro_makespan_s"], 2
    )

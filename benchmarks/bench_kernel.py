"""Simulation-kernel microbenchmark: raw events/sec of the hot path.

Unlike the ``bench_*`` artifact benchmarks (which regenerate paper
figures), this one measures the *simulator substrate itself*: how many
kernel events per second `Environment.step` + `Process._resume` can
push through.  Every paper artifact is bounded by this number, so the
hot-path work in `repro.sim.core` is gated on it.

Pure-kernel scenarios (no device models):

* ``timeout_chain``   — P processes, each yielding E consecutive
  timeouts: the canonical ``yield env.timeout(dt)`` service loop that
  dominates disk/CPU/NIC server processes.
* ``sleep_chain``     — the same service loop via the kernel's numeric
  yield (``yield dt``), the form the hardware models now use; measures
  the allocation-free sleep fast path.
* ``event_relay``     — chains of processes, each waiting on one event
  and succeeding the next: exercises ``Event.succeed`` + wakeup
  delivery + process termination events.
* ``store_producer_consumer`` — P producer/consumer pairs over a
  :class:`~repro.sim.resources.Store`: the cluster message-queue path.

Device fast-forward scenarios (kernel + the disk model, measuring the
analytic fast-forward of :mod:`repro.hardware.disk` — flip it off with
``REPRO_DISK_FF=0`` for a before/after comparison):

* ``disk_drain``      — one disk with a deep FIFO backlog queued up
  front, drained back to back: the pure serve-loop hot path.
* ``mirror_flush``    — waves of bulk background (priority 1) writes,
  the RAID-x OSM image-flush pattern, spawned via ``schedule_many``.

Run standalone::

    python benchmarks/bench_kernel.py            # print a table
    python benchmarks/bench_kernel.py --json out.json
    python benchmarks/bench_kernel.py --scale 0.1   # quick run

or under pytest-benchmark (``pytest benchmarks/bench_kernel.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

from repro.sim.core import Environment
from repro.sim.resources import Store

# -- scenarios ----------------------------------------------------------


def timeout_chain(processes: int = 100, timeouts: int = 2_000) -> int:
    """P processes each yield E timeouts; returns events processed.

    Service intervals differ per process (as real seek/transfer times
    do), so event timestamps are distinct — the representative case for
    heap ordering.  Lockstep identical delays would instead measure the
    degenerate all-ties case.
    """
    env = Environment()

    def proc(dt):
        for _ in range(timeouts):
            yield env.timeout(dt)

    for i in range(processes):
        env.process(proc(1.0 + i * 1e-4))
    env.run()
    # Per process: 1 Initialize + E timeouts + 1 termination event.
    return processes * (timeouts + 2)


def sleep_chain(processes: int = 100, timeouts: int = 2_000) -> int:
    """Like :func:`timeout_chain` but with numeric yields."""
    env = Environment()

    def proc(dt):
        for _ in range(timeouts):
            yield dt

    for i in range(processes):
        env.process(proc(1.0 + i * 1e-4))
    env.run()
    return processes * (timeouts + 2)


def event_relay(chain: int = 1_000, laps: int = 60) -> int:
    """Relay chains: process i waits on event i, succeeds event i+1."""
    env = Environment()
    total = 0

    def relay(events, i):
        value = yield events[i]
        events[i + 1].succeed(value + 1)

    for _ in range(laps):
        events = [env.event() for _ in range(chain + 1)]
        for i in range(chain):
            env.process(relay(events, i))
        events[0].succeed(0)
        env.run()
        assert events[chain].value == chain
        # Per lap: chain Initialize + chain+1 relayed events + chain
        # process terminations.
        total += 3 * chain + 1
    return total


def store_producer_consumer(pairs: int = 20, items: int = 2_000) -> int:
    """P producer/consumer pairs over one Store each."""
    env = Environment()

    def producer(store):
        for i in range(items):
            yield store.put(i)

    def consumer(store):
        for _ in range(items):
            yield store.get()

    for _ in range(pairs):
        store = Store(env)
        env.process(producer(store))
        env.process(consumer(store))
    env.run()
    # Per pair: 2 Initialize + items puts + items gets + 2 terminations.
    return pairs * (2 * items + 4)


def disk_drain(requests: int = 8_000) -> int:
    """Drain a deep FIFO backlog on one disk, queued before t=0.

    Offsets alternate sequential runs with far seeks (both service-time
    branches); the serve loop never goes idle, so this is the purest
    measurement of per-request service cost — the path the analytic
    fast-forward replaces with one Recurring firing per completion.
    """
    from repro.config import DiskParams
    from repro.hardware.disk import Disk

    env = Environment()
    disk = Disk(env, DiskParams())
    step = 16_384
    span = disk.capacity - step
    offset = 0
    last = None
    for i in range(requests):
        if i % 8 == 0:
            offset = (i * 7_340_033) % span  # far seek, deterministic
        op = "read" if i % 3 else "write"
        last = disk.submit(op, offset, step)
        offset = (offset + step) % span
    env.run(last)
    # Normalized to the phase path's three heap events per request
    # (StorePut, service completion, done) so before/after runs report
    # comparable events/sec; the fast-forward needs fewer actual events
    # per request, which is precisely the speedup being measured.
    return 3 * requests


def mirror_flush(flushes: int = 6_400) -> int:
    """Waves of bulk background writes: the RAID-x image-flush pattern.

    Each wave submits a batch of sequential priority-1 extents (the
    n-1 images of an OSM cluster written behind the foreground ack) and
    waits for the batch, exercising schedule_many + the fast-forward's
    sequential closed form.
    """
    from repro.config import DiskParams
    from repro.hardware.disk import Disk

    env = Environment()
    disk = Disk(env, DiskParams())
    batch = 16
    waves = max(1, flushes // batch)
    extent = 65_536
    wrap = disk.capacity - batch * extent

    def flusher():
        for w in range(waves):
            base = (w * batch * extent) % wrap
            events = [
                disk.submit("write", base + j * extent, extent, priority=1)
                for j in range(batch)
            ]
            yield env.all_of(events)

    env.process(flusher())
    env.run()
    return 3 * waves * batch


SCENARIOS: Dict[str, Callable[..., int]] = {
    "timeout_chain": timeout_chain,
    "sleep_chain": sleep_chain,
    "event_relay": event_relay,
    "store_producer_consumer": store_producer_consumer,
    "disk_drain": disk_drain,
    "mirror_flush": mirror_flush,
}


# -- measurement --------------------------------------------------------


def measure(name: str, scale: float = 1.0, repeats: int = 3) -> Dict:
    """Best-of-N wall-clock measurement of one scenario."""
    fn = SCENARIOS[name]
    kwargs = {}
    if scale != 1.0:
        import inspect

        for pname, param in inspect.signature(fn).parameters.items():
            kwargs[pname] = max(1, int(param.default * scale))
    best = float("inf")
    events = 0
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            events = fn(**kwargs)
            dt = time.perf_counter() - t0
            best = min(best, dt)
    except Exception as exc:
        # Lets the benchmark run against older kernels that lack a
        # feature a scenario needs (e.g. numeric yields).
        return {"error": f"{type(exc).__name__}: {exc}"}
    return {
        "events": events,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best),
    }


def run_all(scale: float = 1.0, repeats: int = 3) -> Dict[str, Dict]:
    return {name: measure(name, scale, repeats) for name in SCENARIOS}


# -- pytest-benchmark hooks --------------------------------------------

try:  # pragma: no cover - only when pytest-benchmark is present
    import pytest

    @pytest.mark.benchmark(group="kernel")
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_kernel_scenario(benchmark, name):
        events = benchmark.pedantic(
            SCENARIOS[name], rounds=1, iterations=1
        )
        benchmark.extra_info["events"] = events

except ImportError:  # pragma: no cover
    pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write results as JSON")
    parser.add_argument("--label", default=None,
                        help="label stored in the JSON (e.g. before/after)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale scenario sizes (0.1 = quick run)")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    results = run_all(scale=args.scale, repeats=args.repeats)
    width = max(len(n) for n in results)
    print(f"{'scenario':<{width}}  {'events':>10}  {'seconds':>9}  "
          f"{'events/sec':>12}")
    for name, r in results.items():
        if "error" in r:
            print(f"{name:<{width}}  unsupported: {r['error']}")
            continue
        print(f"{name:<{width}}  {r['events']:>10}  {r['seconds']:>9.4f}  "
              f"{r['events_per_sec']:>12}")

    if args.json:
        payload = {"label": args.label, "python": sys.version.split()[0],
                   "scale": args.scale, "scenarios": results}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"[written {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""A1 — ablation: background vs foreground mirror updates in RAID-x.

Quantifies how much of RAID-x's write advantage comes from *deferring*
the image writes (the OSM background update) versus from *clustering*
them into long extents: the foreground variant keeps clustering but
waits for the images.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload


def measure(mirror_policy):
    out = {}
    for label, size, repeats in (
        ("large_write", 2 * MB, 1),
        ("small_write", 32 * KiB, 1),
    ):
        cluster = build_cluster(
            trojans_cluster(),
            architecture="raidx",
            mirror_policy=mirror_policy,
        )
        r = ParallelIOWorkload(
            cluster, 12, op="write", size=size, repeats=repeats
        ).run()
        out[label] = r.aggregate_bandwidth_mb_s
        if label == "large_write":
            # The price of deferral: how long images stayed un-flushed.
            out["vuln_p95_ms"] = (
                cluster.storage.vulnerability_stats()["p95"] * 1e3
            )
    return out


def run_ablation():
    return {
        "background": measure("background"),
        "foreground": measure("foreground"),
    }


def test_ablation_mirror_policy(benchmark):
    res = run_once(benchmark, run_ablation)
    rows = [
        [policy, vals["large_write"], vals["small_write"],
         vals["vuln_p95_ms"]]
        for policy, vals in res.items()
    ]
    emit(
        "A1 — RAID-x mirror policy (aggregate MB/s, 12 clients)",
        render_table(
            ["policy", "large_write", "small_write",
             "image exposure p95 (ms)"],
            rows,
        ),
    )
    bg, fg = res["background"], res["foreground"]
    # Deferral is the bulk of the one-shot write advantage.
    assert bg["large_write"] > 1.3 * fg["large_write"]
    assert bg["small_write"] > 1.3 * fg["small_write"]
    # The price: a bounded redundancy-exposure window per image.
    assert 0 < bg["vuln_p95_ms"] < 5000
    # But foreground-with-clustering still functions correctly.
    assert fg["large_write"] > 0
    benchmark.extra_info["deferral_gain_large"] = round(
        bg["large_write"] / fg["large_write"], 2
    )
    benchmark.extra_info["exposure_p95_ms"] = round(bg["vuln_p95_ms"], 1)

"""A5 — extension: I/O load-balanced reads (the paper's §7 future work).

"In next phase of the Trojans project, we will develop a distributed
file system with I/O load balancing capabilities" — this ablation
implements and evaluates replica-selection by shortest disk queue (with
a hysteresis margin so a diverted read must be worth the broken
sequential run) under a Zipf-skewed read-only workload.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.synthetic import SyntheticWorkload

ARCHS = ("raid10", "chained", "raidx")


def measure(arch, policy):
    cluster = build_cluster(
        trojans_cluster(), architecture=arch, read_policy=policy
    )
    wl = SyntheticWorkload(
        cluster,
        clients=12,
        ops_per_client=48,
        read_fraction=1.0,
        pattern="zipf",
        zipf_theta=1.1,
        region_bytes=64 * MB,
    )
    return wl.run().elapsed


def run_sweep():
    rows = []
    for arch in ARCHS:
        static = measure(arch, "static")
        balanced = measure(arch, "shortest_queue")
        rows.append(
            {
                "architecture": arch,
                "static_s": round(static, 3),
                "balanced_s": round(balanced, 3),
                "speedup": round(static / balanced, 3),
            }
        )
    return rows


def test_ablation_read_balance(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A5 — load-balanced replica reads (Zipf hot-spot, 12 clients)",
        render_table(
            ["architecture", "static_s", "balanced_s", "speedup"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by = {r["architecture"]: r for r in rows}
    # Balancing must never hurt (the hysteresis margin guards the
    # far-mirror seek on RAID-x) and should help the mirrored layouts.
    for r in rows:
        assert r["speedup"] > 0.97
    assert by["raid10"]["speedup"] > 1.05
    benchmark.extra_info["speedups"] = {
        r["architecture"]: r["speedup"] for r in rows
    }

"""A2 — ablation: n×k geometry (stripe parallelism vs pipeline depth).

The paper (§6) notes the 4×3 array "can be reconfigured ... to a 6×2
array, if pipelined access shows less advantage".  This sweep runs the
same 12 disks as 12×1, 6×2, 4×3, and 3×4 under large parallel writes
and checkpointing, exposing the trade-off: wider stripes buy client
bandwidth, deeper pipelines buy per-node capacity (and fault coverage —
one failure per group — grows with k).
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.checkpoint import CheckpointConfig, CheckpointRun
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload

GEOMETRIES = ((12, 1), (6, 2), (4, 3), (3, 4))


def run_geometry_sweep():
    rows = []
    for n, k in GEOMETRIES:
        cluster = build_cluster(
            trojans_cluster(n=n, k=k), architecture="raidx"
        )
        wl = ParallelIOWorkload(cluster, n, op="write", size=2 * MB)
        bw = wl.run().aggregate_bandwidth_mb_s
        ck_cluster = build_cluster(
            trojans_cluster(n=n, k=k), architecture="raidx"
        )
        ck = CheckpointRun(
            ck_cluster,
            CheckpointConfig(
                processes=n, state_bytes=4 * MB, scheme="striped_staggered",
                stagger_groups=max(1, k),
            ),
        ).run()
        coverage = ck_cluster.storage.layout.max_fault_coverage()
        rows.append(
            {
                "geometry": f"{n}x{k}",
                "write_mb_s": round(bw, 2),
                "ckpt_epoch_s": round(ck.total_time, 3),
                "fault_coverage": coverage,
            }
        )
    return rows


def test_ablation_geometry(benchmark):
    rows = run_once(benchmark, run_geometry_sweep)
    emit(
        "A2 — n×k geometry trade-off (12 disks)",
        render_table(
            ["geometry", "write_mb_s", "ckpt_epoch_s", "fault_coverage"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by_geo = {r["geometry"]: r for r in rows}
    # Fault coverage grows with pipeline depth k.
    assert by_geo["12x1"]["fault_coverage"] == 1
    assert by_geo["4x3"]["fault_coverage"] == 3
    assert by_geo["3x4"]["fault_coverage"] == 4
    # Wider stripes give more aggregate client write bandwidth.
    assert by_geo["12x1"]["write_mb_s"] > by_geo["3x4"]["write_mb_s"]
    benchmark.extra_info["geometries"] = {
        g: r["write_mb_s"] for g, r in by_geo.items()
    }

"""F1 — Figure 1: OSM vs chained-declustering disk mirroring maps.

Regenerates both 4-disk placement diagrams and asserts the placements
the figure shows explicitly.
"""

from conftest import emit, run_once

from repro.bench.experiments import fig1_layout_maps
from repro.raid import make_layout


def test_fig1_layout_maps(benchmark):
    text = run_once(benchmark, fig1_layout_maps)
    emit("Figure 1 — disk mirroring schemes (4 disks)", text)

    raidx = make_layout(
        "raidx", n_disks=4, block_size=1, disk_capacity=8, stripe_width=4
    )
    # Fig. 1a: images of (B0,B1,B2) clustered on Disk 3, next group on D2.
    assert raidx.mirror_group_of(0).image_disk == 3
    assert raidx.mirror_group_of(3).image_disk == 2
    assert raidx.mirror_group_of(0).blocks == (0, 1, 2)
    # Images of a 4-block stripe land on exactly two disks.
    assert len(raidx.stripe_image_disks(0)) == 2

    chained = make_layout(
        "chained", n_disks=4, block_size=1, disk_capacity=8
    )
    # Fig. 1b: skewed mirroring — disk d's blocks mirror onto disk d+1.
    for b in range(8):
        data = chained.data_location(b)
        mirror = chained.redundancy_locations(b)[0]
        assert mirror.disk == (data.disk + 1) % 4

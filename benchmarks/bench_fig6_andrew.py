"""F6 — Figure 6: Andrew benchmark elapsed times on four I/O subsystems.

Per-phase elapsed times for 1..32 clients on NFS, RAID-5, RAID-10, and
RAID-x.  Asserts the §5.2 observations: NFS's weakness in metadata/read
phases, RAID-5's copy-phase degradation (small writes), and RAID-x's
overall win.
"""

from conftest import emit, run_once

from repro.bench.experiments import FIG6_CLIENTS, FIG_ARCHS, fig6_andrew


def test_fig6_andrew(benchmark):
    result = run_once(
        benchmark,
        fig6_andrew,
        archs=FIG_ARCHS,
        client_counts=FIG6_CLIENTS,
    )
    emit("Figure 6 — Andrew benchmark elapsed times (s)", result.render())

    max_cl = max(FIG6_CLIENTS)

    def total(arch, clients):
        return result.filter(architecture=arch, clients=clients).rows[0][
            "total"
        ]

    def phase(arch, clients, name):
        return result.filter(architecture=arch, clients=clients).rows[0][
            name
        ]

    # RAID-x finishes first at scale; RAID-5 is the slowest array.
    assert total("raidx", max_cl) <= total("raid10", max_cl)
    assert total("raidx", max_cl) < total("raid5", max_cl)
    assert total("raidx", max_cl) < total("nfs", max_cl)
    # "The elapsed time to copy files in RAID-5 increases with the
    # number of clients ... the small write problem."
    assert phase("raid5", max_cl, "Copy") > phase("raid5", 1, "Copy")
    assert phase("raid5", max_cl, "Copy") > 2.0 * phase(
        "raidx", max_cl, "Copy"
    )
    # NFS shows poor behaviour in scan/read phases (per-open GETATTRs).
    assert phase("nfs", max_cl, "ScanDir") >= phase(
        "raidx", max_cl, "ScanDir"
    )
    # Every subsystem's elapsed time grows with client count.
    for arch in FIG_ARCHS:
        assert total(arch, max_cl) > total(arch, 1)

    benchmark.extra_info["raidx_total_32cl"] = total("raidx", max_cl)
    benchmark.extra_info["raid5_total_32cl"] = total("raid5", max_cl)
    cut = 1 - total("raidx", max_cl) / total("raid10", max_cl)
    benchmark.extra_info["cut_vs_raid10"] = round(cut, 3)

"""A8 — extension: online array reconfiguration cost.

The paper's §6 proposes reconfiguring a 4×3 array into a 6×2 when
pipelined access shows less advantage.  This bench quantifies what that
costs: the migration plan size between geometries/architectures and the
online copy rate through the CDDs.

A pleasant property of OSM falls out: RAID-x *data* placement is
width-independent (block i → disk i mod D), so an n×k reconfiguration
moves **zero data blocks** — only the mirror images need regeneration,
which the background flusher does anyway.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.raid import make_layout, migration_plan, reconfigure
from repro.raid.migrate import execute_migration
from repro.units import KiB


def layouts():
    kw = dict(n_disks=12, block_size=32 * KiB,
              disk_capacity=trojans_cluster().disk.capacity_bytes)
    return {
        "raidx 4x3": make_layout("raidx", stripe_width=4, **kw),
        "raidx 6x2": make_layout("raidx", stripe_width=6, **kw),
        "raid0": make_layout("raid0", **kw),
        "raid10": make_layout("raid10", **kw),
        "raid5": make_layout("raid5", **kw),
    }


def run_sweep():
    lays = layouts()
    pairs = (
        ("raidx 4x3", "raidx 6x2"),
        ("raid0", "raidx 4x3"),
        ("raid0", "raid5"),
        ("raid0", "raid10"),
    )
    rows = []
    for a, b in pairs:
        plan = migration_plan(lays[a], lays[b], max_blocks=4096)
        rows.append(
            {
                "from": a,
                "to": b,
                "moved_fraction": round(plan.moved_fraction, 3),
                "moves_per_4096": len(plan),
            }
        )
    # Execute one real migration online to measure the copy rate.
    cluster = build_cluster(trojans_cluster(), architecture="raid0")
    plan = migration_plan(
        cluster.storage.layout,
        reconfigure(lays["raid5"], 12, 1),
        max_blocks=512,
    )
    result = execute_migration(cluster, plan)
    return rows, result


def test_migration(benchmark):
    rows, result = run_once(benchmark, run_sweep)
    emit(
        "A8 — reconfiguration cost (first 4096 blocks)",
        render_table(
            ["from", "to", "moved_fraction", "moves_per_4096"],
            [[r[k] for k in r] for r in rows],
        )
        + f"\nonline copy rate: {result.rate_mb_s:.1f} MB/s "
        f"({result.moves} moves in {result.elapsed:.2f}s)",
    )
    by = {(r["from"], r["to"]): r for r in rows}
    # OSM data placement is width-independent: n×k changes are free.
    assert by[("raidx 4x3", "raidx 6x2")]["moved_fraction"] == 0.0
    assert by[("raid0", "raidx 4x3")]["moved_fraction"] == 0.0
    # Cross-architecture moves relocate most blocks.
    assert by[("raid0", "raid5")]["moved_fraction"] > 0.5
    assert by[("raid0", "raid10")]["moved_fraction"] > 0.5
    assert result.rate_mb_s > 1.0
    benchmark.extra_info["online_rate_mb_s"] = round(result.rate_mb_s, 2)

"""A4 — ablation: RAID-5 write-path optimizations.

The paper's measured software RAID-5 was read-modify-write bound; this
ablation quantifies what a full-stripe-gathering, parity-batching RAID-5
(TickerTAIP-style) would have recovered — and shows RAID-x still wins
one-shot writes because it avoids parity work altogether.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload

VARIANTS = (
    ("raid5 per-block RMW (paper-era)", {}),
    ("raid5 + batched RMW", {"batch_rmw": True}),
    (
        "raid5 + batched RMW + full-stripe opt",
        {"batch_rmw": True, "full_stripe_optimization": True},
    ),
)


def run_variants():
    rows = []
    for label, kw in VARIANTS:
        cluster = build_cluster(
            trojans_cluster(), architecture="raid5", **kw
        )
        # Gathered submission (chunk = whole request) models the driver
        # stripe cache the optimized variants rely on; the per-block
        # variant behaves the same either way.
        lw = ParallelIOWorkload(
            cluster, 12, op="write", size=2 * MB, chunk=2 * MB,
            queue_depth=1,
        ).run().aggregate_bandwidth_mb_s
        c2 = build_cluster(trojans_cluster(), architecture="raid5", **kw)
        sw = ParallelIOWorkload(
            c2, 12, op="write", size=32 * KiB
        ).run().aggregate_bandwidth_mb_s
        rows.append({"variant": label, "large_write": round(lw, 2),
                     "small_write": round(sw, 2)})
    cx = build_cluster(trojans_cluster(), architecture="raidx")
    rows.append(
        {
            "variant": "raidx (reference)",
            "large_write": round(
                ParallelIOWorkload(cx, 12, op="write", size=2 * MB)
                .run()
                .aggregate_bandwidth_mb_s,
                2,
            ),
            "small_write": round(
                ParallelIOWorkload(
                    build_cluster(trojans_cluster(), architecture="raidx"),
                    12,
                    op="write",
                    size=32 * KiB,
                )
                .run()
                .aggregate_bandwidth_mb_s,
                2,
            ),
        }
    )
    return rows


def test_ablation_raid5_optimizations(benchmark):
    rows = run_once(benchmark, run_variants)
    emit(
        "A4 — RAID-5 write-path optimizations (MB/s, 12 clients)",
        render_table(
            ["variant", "large_write", "small_write"],
            [[r["variant"], r["large_write"], r["small_write"]]
             for r in rows],
        ),
    )
    base, batched, full, raidx = rows
    # Each optimization recovers large-write bandwidth...
    assert batched["large_write"] > base["large_write"]
    assert full["large_write"] > batched["large_write"]
    # ...but single-block writes still pay RMW, so RAID-x keeps a clear
    # small-write lead even over the optimized RAID-5.
    assert raidx["small_write"] > 1.5 * full["small_write"]
    benchmark.extra_info["fullstripe_recovery"] = round(
        full["large_write"] / base["large_write"], 2
    )

"""Reduced-scale determinism check for the sharded scale sweep.

Runs ``repro.bench.experiments.run_scale`` at a fraction of its
benchmark scale — a few thousand open-loop requests split over
arrival-seed shards — and prints one canonical JSON line per reduced
row, floats rendered as ``float.hex()`` so no drift can hide behind
decimal rounding.  The shard rows are simulation-pure (counts, event
totals, simulated time, histogram payloads; no wall-clock), so CI runs
this twice — once serial, once on a worker pool — and diffs the
outputs: a single changed byte means either a nondeterministic code
path or a shard plan that depends on worker count.

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke_check.py > rows.txt
    PYTHONPATH=src python benchmarks/scale_smoke_check.py --workers 2
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.experiments import run_scale

# Reduced scale: two small clusters, sharded arrivals, a couple of
# thousand requests — the two CI runs stay under a minute.
NODES = (4, 12)
REQUESTS = 3000
SHARDS = 3


def _hexfloat(value):
    if isinstance(value, float):
        return value.hex()
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    # cache=False: the point is to *re-simulate* and diff; serving the
    # second run from the sweep cache would prove nothing.
    result = run_scale(
        NODES, REQUESTS, shards=SHARDS, workers=args.workers, cache=False
    )
    for row in result.rows:
        print(
            json.dumps(
                {k: _hexfloat(v) for k, v in sorted(row.items())},
                sort_keys=True,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Scale benchmark: million-request open-loop sweeps, FF on vs off.

Measures the wall-clock cost of the scale sweep's shards
(:func:`repro.bench.experiments._scale_point` — local-placement
open-loop reads on RAID-x, the conflict-free regime) at 12/64/256
nodes, with the node-level analytic fast-forward enabled and disabled.
The simulation results are byte-identical either way (pinned by
``tests/hardware/test_node_fastforward.py``); what changes is how many
heap events and process frames each request costs, and therefore the
requests/sec and events/sec the host pushes through.

``speedup`` is the requests/sec ratio (fast-forward over event-driven
baseline).  The baseline runs fewer requests by default
(``--baseline-requests``) since both rates are steady within a shard.

Run standalone::

    python benchmarks/bench_scale.py                    # full (minutes)
    python benchmarks/bench_scale.py --requests 40000   # quick run
    python benchmarks/bench_scale.py --json BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from repro.bench.experiments import (
    SCALE_NODES,
    _scale_point,
    reduce_scale_shards,
)
from repro.hardware import node as node_mod


def measure_point(
    n_nodes: int,
    n_requests: int,
    shards: int = 4,
    node_ff: bool = True,
    base_seed: int = 0,
) -> Dict:
    """Run one scale point's shards serially; time the whole batch.

    Serial in-process execution keeps the timing honest (no pool
    startup or IPC in the measured window); the sharded runner's
    determinism is asserted separately by the scale-smoke test.
    """
    per_shard = max(1, n_requests // max(1, shards))
    old = node_mod.NODE_FAST_FORWARD
    node_mod.NODE_FAST_FORWARD = node_ff
    try:
        t0 = time.perf_counter()
        rows = [
            _scale_point(
                n_nodes=n_nodes, n_requests=per_shard, seed=base_seed + s
            )
            for s in range(max(1, shards))
        ]
        wall = time.perf_counter() - t0
    finally:
        node_mod.NODE_FAST_FORWARD = old
    red = reduce_scale_shards(rows)
    red.pop("hist")  # distribution is summarized by mean/p99 here
    red["wall_s"] = round(wall, 3)
    red["requests_per_sec"] = round(red["completed"] / wall)
    red["events_per_sec"] = round(red["events"] / wall)
    red["mean_ms"] = round(red["mean_ms"], 4)
    red["p99_ms"] = round(red["p99_ms"], 4)
    red["sim_s"] = round(red["sim_s"], 3)
    return red


def run_all(
    n_requests: int = 1_000_000,
    baseline_requests: Optional[int] = None,
    shards: int = 4,
    node_counts=SCALE_NODES,
) -> Dict[str, Dict]:
    """FF-on and FF-off measurements for every scale point."""
    if baseline_requests is None:
        baseline_requests = max(1, n_requests // 5)
    out: Dict[str, Dict] = {}
    for n in node_counts:
        ff = measure_point(n, n_requests, shards, node_ff=True)
        base = measure_point(n, baseline_requests, shards, node_ff=False)
        out[str(n)] = {
            "fast_forward": ff,
            "baseline": base,
            "speedup": round(
                ff["requests_per_sec"] / base["requests_per_sec"], 2
            ),
            "events_per_request_ff": round(
                ff["events"] / ff["completed"], 2
            ),
            "events_per_request_base": round(
                base["events"] / base["completed"], 2
            ),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write results as JSON")
    parser.add_argument("--requests", type=int, default=1_000_000,
                        help="requests per scale point (fast-forward run)")
    parser.add_argument("--baseline-requests", type=int, default=None,
                        help="requests for the event-driven baseline "
                        "(default: requests/5; rates are steady-state)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--nodes", type=int, nargs="*", default=None,
                        help="node counts (default: 12 64 256)")
    args = parser.parse_args(argv)

    nodes = tuple(args.nodes) if args.nodes else SCALE_NODES
    results = run_all(
        n_requests=args.requests,
        baseline_requests=args.baseline_requests,
        shards=args.shards,
        node_counts=nodes,
    )
    print(f"{'nodes':>5}  {'mode':<12} {'requests':>9} {'req/s':>8} "
          f"{'events/s':>9} {'ev/req':>6} {'wall s':>8}")
    for n, r in results.items():
        for mode, key in (("fast-forward", "fast_forward"),
                          ("baseline", "baseline")):
            m = r[key]
            print(f"{n:>5}  {mode:<12} {m['completed']:>9} "
                  f"{m['requests_per_sec']:>8} {m['events_per_sec']:>9} "
                  f"{m['events'] / m['completed']:>6.2f} "
                  f"{m['wall_s']:>8.2f}")
        print(f"{'':>5}  speedup {r['speedup']}x")

    if args.json:
        payload = {
            "python": sys.version.split()[0],
            "requests": args.requests,
            "shards": args.shards,
            "points": results,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[written {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())

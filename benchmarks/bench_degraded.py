"""A7 — extension: performance under failure and during rebuild.

Standard distributed-RAID methodology the paper only touches implicitly:
measure aggregate read bandwidth healthy, degraded (one failed disk),
and during an online rebuild, for each fault-tolerant architecture.
RAID-5's degraded reads reconstruct from the whole stripe, so its
degradation is the deepest; the mirrored layouts just fail over.
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload

ARCHS = ("raid5", "raid10", "chained", "raidx")
FAILED_DISK = 3


def bandwidth(cluster):
    wl = ParallelIOWorkload(cluster, 12, op="read", size=1 * MB)
    return wl.run().aggregate_bandwidth_mb_s


def run_sweep():
    rows = []
    for arch in ARCHS:
        cluster = build_cluster(trojans_cluster(), architecture=arch)
        healthy = bandwidth(cluster)
        cluster.storage.fail_disk(FAILED_DISK)
        degraded = bandwidth(cluster)
        # Online rebuild: replacement inserted, rebuild runs while the
        # clients keep reading.
        cluster.storage.repair_disk(FAILED_DISK)
        from repro.raid.reconstruct import plan_rebuild

        rebuild_ops = len(
            plan_rebuild(cluster.storage.layout, FAILED_DISK,
                         max_blocks=2048)
        )
        rows.append(
            {
                "architecture": arch,
                "healthy_mb_s": round(healthy, 2),
                "degraded_mb_s": round(degraded, 2),
                "retained": round(degraded / healthy, 3),
                "rebuild_ops_per_2048_blocks": rebuild_ops,
            }
        )
    return rows


def test_degraded_mode(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A7 — degraded-mode read bandwidth (disk 3 failed)",
        render_table(
            [
                "architecture",
                "healthy_mb_s",
                "degraded_mb_s",
                "retained",
                "rebuild_ops_per_2048_blocks",
            ],
            [[r[k] for k in r] for r in rows],
        ),
    )
    by = {r["architecture"]: r for r in rows}
    # Everyone survives; nobody gains from a failure.
    for r in rows:
        assert 0.2 < r["retained"] <= 1.05
    # RAID-x retains the most bandwidth: the failed disk's blocks are
    # served from images scattered over the whole disk group (OSM
    # declusters the fail-over load), unlike RAID-10's single pair
    # partner or chained declustering's far mirror region.
    assert by["raidx"]["retained"] >= max(
        by[a]["retained"] for a in ("raid5", "raid10", "chained")
    )
    # RAID-5 reconstruction loads every surviving disk in the stripe.
    assert by["raid5"]["retained"] <= by["raid10"]["retained"] + 0.05
    assert by["chained"]["retained"] < by["raidx"]["retained"]
    benchmark.extra_info["retained"] = {
        r["architecture"]: r["retained"] for r in rows
    }

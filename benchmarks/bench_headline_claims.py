"""C1 — the Conclusions' headline ratios, re-measured on the simulator.

Paper (§7): parallel reads with 12 clients — RAID-x 1.5x RAID-5 and
3.7x NFS; small writes — 3x RAID-5; Andrew — ~17 % cut vs RAID-5 /
RAID-10.  We assert the simulator lands in the same regime (bands are
wide on purpose: the substrate is a simulator, not the USC testbed).
"""

from conftest import emit, run_once

from repro.analysis.report import render_table
from repro.bench.experiments import headline_claims


def test_headline_claims(benchmark):
    claims = run_once(benchmark, headline_claims)
    emit(
        "Headline claims (paper -> measured)",
        render_table(
            ["claim", "paper", "measured"],
            [
                ["read vs RAID-5", "1.5x", f"{claims['read_vs_raid5']:.2f}x"],
                ["read vs NFS", "3.7x", f"{claims['read_vs_nfs']:.2f}x"],
                [
                    "small write vs RAID-5",
                    "3.0x",
                    f"{claims['small_write_vs_raid5']:.2f}x",
                ],
                [
                    "Andrew cut vs RAID-10",
                    "~17%",
                    f"{100 * claims['andrew_cut_vs_raid10']:.1f}%",
                ],
                [
                    "Andrew cut vs RAID-5",
                    "~17%+",
                    f"{100 * claims['andrew_cut_vs_raid5']:.1f}%",
                ],
            ],
        ),
    )
    # Reads: RAID-x at least matches RAID-5 and clearly beats NFS.
    assert claims["read_vs_raid5"] > 0.85
    assert 2.0 < claims["read_vs_nfs"] < 8.0
    # Small writes: the ~3x claim.
    assert 2.0 < claims["small_write_vs_raid5"] < 5.0
    # Andrew: RAID-x cuts elapsed time vs both mirrored and parity RAID.
    assert claims["andrew_cut_vs_raid10"] > 0.0
    assert claims["andrew_cut_vs_raid5"] > 0.15
    for key, value in claims.items():
        benchmark.extra_info[key] = round(value, 3)

"""A6 — extension: scale-out beyond the Trojans prototype.

The paper's §7 plans "an enlarged prototype of several hundreds of
disks".  This sweep grows the serverless cluster from 12 to 48 nodes
(up to 96 disks with k=2) and checks that RAID-x's aggregate write
bandwidth keeps scaling while NFS stays pinned at one server.
"""

from conftest import emit, env_workers, run_once

from repro.analysis.report import render_table
from repro.analysis.scalability import scaling_efficiency
from repro.bench.harness import sweep
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload

SIZES = (12, 24, 48)


def measure(arch, n, k=1):
    cluster = build_cluster(trojans_cluster(n=n, k=k), architecture=arch)
    wl = ParallelIOWorkload(cluster, clients=n, op="write", size=2 * MB)
    return wl.run().aggregate_bandwidth_mb_s


def _point(nodes):
    return {
        "raidx_mb_s": round(measure("raidx", nodes), 2),
        "raidx_2disks_mb_s": round(measure("raidx", nodes, k=2), 2),
        "nfs_mb_s": round(measure("nfs", nodes), 2),
    }


def run_sweep(workers=None):
    result = sweep(
        "scaleout",
        _point,
        {"nodes": list(SIZES)},
        workers=workers if workers is not None else env_workers(),
    )
    return result.rows


def test_scaleout(benchmark):
    rows = run_once(benchmark, run_sweep)
    emit(
        "A6 — scale-out: aggregate write bandwidth vs cluster size",
        render_table(
            ["nodes", "raidx_mb_s", "raidx_2disks_mb_s", "nfs_mb_s"],
            [[r[k] for k in r] for r in rows],
        ),
    )
    raidx = [r["raidx_mb_s"] for r in rows]
    nfs = [r["nfs_mb_s"] for r in rows]
    # RAID-x keeps growing with the cluster; efficiency stays healthy.
    assert raidx[-1] > 2.0 * raidx[0] * 0.8
    eff = scaling_efficiency(list(SIZES), raidx)
    assert eff[-1] > 0.5
    # NFS is pinned at the server regardless of cluster size.
    assert max(nfs) < 2.5 * min(nfs)
    assert raidx[-1] > 20 * nfs[-1]
    benchmark.extra_info["raidx_48_nodes_mb_s"] = raidx[-1]
    benchmark.extra_info["scaling_efficiency_48"] = round(eff[-1], 3)

"""A11 — extension: hardware sensitivity / bottleneck analysis.

Scales one hardware resource at a time (disk media rate, network link
rate, CPU rates) by 2× and measures how much RAID-x 12-client write
bandwidth moves.  The instructive result: the utilization-based
analyzer names the foreground *disk* share (~60 % busy), yet doubling
the **network** pays 1.6× while doubling the disks pays ~1.06× —
because the per-request critical path is dominated by NIC serialization
and incast stretch, which utilization accounting cannot rank.
Sensitivity analysis, not utilization reading, finds the lever.
"""

from dataclasses import replace

from conftest import emit, run_once

from repro.analysis.bottleneck import bottleneck, usage_table
from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload


def scaled_config(which: str, factor: float):
    cfg = trojans_cluster()
    if which == "disk":
        return replace(
            cfg, disk=replace(cfg.disk, media_rate=cfg.disk.media_rate
                              * factor)
        )
    if which == "network":
        return replace(
            cfg,
            network=replace(
                cfg.network, link_rate=cfg.network.link_rate * factor
            ),
        )
    if which == "cpu":
        return replace(
            cfg,
            cpu=replace(
                cfg.cpu,
                xor_rate=cfg.cpu.xor_rate * factor,
                memcpy_rate=cfg.cpu.memcpy_rate * factor,
                kernel_request_overhead_s=(
                    cfg.cpu.kernel_request_overhead_s / factor
                ),
                user_level_request_overhead_s=(
                    cfg.cpu.user_level_request_overhead_s / factor
                ),
            ),
        )
    raise ValueError(which)


def measure(cfg):
    cluster = build_cluster(cfg, architecture="raidx")
    r = ParallelIOWorkload(cluster, 12, op="write", size=2 * MB).run()
    return r.aggregate_bandwidth_mb_s, cluster


def run_sweep():
    base_bw, base_cluster = measure(trojans_cluster())
    named = bottleneck(base_cluster).name
    usages = usage_table(base_cluster)
    rows = [{"variant": "baseline", "write_mb_s": round(base_bw, 2),
             "gain": 1.0}]
    gains = {}
    for which in ("disk", "network", "cpu"):
        bw, _c = measure(scaled_config(which, 2.0))
        gains[which] = bw / base_bw
        rows.append(
            {
                "variant": f"2x {which}",
                "write_mb_s": round(bw, 2),
                "gain": round(bw / base_bw, 3),
            }
        )
    return rows, named, usages, gains


def test_sensitivity(benchmark):
    rows, named, usages, gains = run_once(benchmark, run_sweep)
    emit(
        "A11 — hardware sensitivity (RAID-x, 12-client large writes)",
        render_table(
            ["variant", "write_mb_s", "gain"],
            [[r[k] for k in r] for r in rows],
        )
        + f"\nbottleneck analyzer names: {named}\nutilizations: {usages}",
    )
    # The network is the real lever for the 12-client write point...
    assert gains["network"] == max(gains.values())
    assert gains["network"] > 1.3
    # ...even though utilization accounting names the disks — the
    # documented divergence (see module docstring).
    assert named in ("disk_foreground", "nic_rx", "nic_tx")
    # Nothing should *hurt* when scaled up.
    for which, g in gains.items():
        assert g > 0.9
    benchmark.extra_info["bottleneck"] = named
    benchmark.extra_info["gains"] = {k: round(v, 3) for k, v in
                                     gains.items()}

"""Benchmark-suite helpers.

Each ``bench_*`` file regenerates one of the paper's tables or figures
(see DESIGN.md §4).  Simulated experiments are deterministic, so every
benchmark runs with ``rounds=1`` — the *benchmark time* is the wall time
to regenerate the artifact; the artifact's own numbers are attached as
``extra_info`` and printed (visible with ``pytest -s``).
"""

from __future__ import annotations

import os


def env_workers():
    """Worker-process count for parallel sweeps ($REPRO_BENCH_WORKERS).

    Returns ``None`` (serial) unless the variable is set to an integer
    greater than 1.  Parallel and serial sweeps produce identical rows;
    the variable only changes wall-clock time.
    """
    try:
        n = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))
    except ValueError:
        return None
    return n if n > 1 else None


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return it."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def emit(title: str, text: str) -> None:
    """Print a rendered artifact under a clear banner."""
    bar = "=" * max(20, len(title) + 8)
    print(f"\n{bar}\n    {title}\n{bar}\n{text}\n")

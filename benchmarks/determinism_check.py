"""Reduced-scale determinism check for the seeded benchmarks.

Runs the Fig. 5 bandwidth sweep and the A7 degraded-mode sweep at a
fraction of their benchmark scale and prints one canonical JSON line
per measurement row, with every float rendered as ``float.hex()`` so
no drift can hide behind decimal rounding.  CI runs this twice and
diffs the outputs: the simulator is seeded and single-threaded, so a
single changed byte means a nondeterministic code path (iteration over
an unordered set, an id()-keyed dict, a wall-clock read) crept into
the I/O stack.

Usage::

    PYTHONPATH=src python benchmarks/determinism_check.py > rows.txt
"""

from __future__ import annotations

import json
import sys

from repro.bench.experiments import fig5_bandwidth
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import KiB
from repro.workloads.parallel_io import ParallelIOWorkload

# Reduced scale: 2 client counts x 2 workloads x 4 archs (vs. the full
# 5 x 4 x 4 grid) keeps the two CI runs under a couple of minutes.
FIG5_CLIENTS = (1, 4)
FIG5_WORKLOADS = ("large_read", "small_write")

DEGRADED_ARCHS = ("raid5", "raid10", "chained", "raidx")
FAILED_DISK = 3


def _hexfloat(value):
    if isinstance(value, float):
        return value.hex()
    return value


def _canon(kind: str, row: dict) -> str:
    return json.dumps(
        {"kind": kind, **{k: _hexfloat(v) for k, v in sorted(row.items())}},
        sort_keys=True,
    )


def fig5_rows():
    # cache=False: the point of this check is to *re-simulate* and diff;
    # serving the second run from the sweep cache would prove nothing.
    result = fig5_bandwidth(
        client_counts=FIG5_CLIENTS, workloads=FIG5_WORKLOADS, cache=False
    )
    for row in result.rows:
        yield _canon("fig5", dict(row))


def degraded_rows():
    """A7 at reduced scale: 4 clients, 256 KiB reads, full float precision."""
    for arch in DEGRADED_ARCHS:
        cluster = build_cluster(trojans_cluster(), architecture=arch)

        def bandwidth():
            wl = ParallelIOWorkload(cluster, 4, op="read", size=256 * KiB)
            return wl.run().aggregate_bandwidth_mb_s

        healthy = bandwidth()
        cluster.storage.fail_disk(FAILED_DISK)
        degraded = bandwidth()
        yield _canon(
            "degraded",
            {
                "architecture": arch,
                "healthy_mb_s": healthy,
                "degraded_mb_s": degraded,
                "final_time": cluster.env.now,
            },
        )


def main() -> int:
    for line in fig5_rows():
        print(line)
    for line in degraded_rows():
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())

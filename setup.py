"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` (or ``python setup.py develop``)
works on toolchains without the ``wheel`` package, e.g. offline boxes.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)

#!/usr/bin/env python3
"""Scenario: operating through disk failures.

Shows the fault-tolerance story end to end on a 4×3 RAID-x array:
coverage enumeration, serving I/O in degraded mode after injected
failures (one per stripe group — the maximum the paper claims for the
4×3 configuration), rebuild onto replacement disks, and the analytical
MTTDL comparison across architectures.

    python examples/fault_tolerance_demo.py
"""

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.fault import (
    FailureEvent,
    FaultInjector,
    coverage_profile,
    mttdl_chained,
    mttdl_mirrored_pairs,
    mttdl_raid5,
    mttdl_raidx,
)
from repro.raid.reconstruct import execute_rebuild
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload


def main() -> None:
    cluster = build_cluster(trojans_cluster(n=4, k=3), architecture="raidx")
    layout = cluster.storage.layout
    print(
        f"4x3 RAID-x array: guaranteed single-failure coverage, up to "
        f"{layout.max_fault_coverage()} failures if they spread across "
        f"disk groups."
    )
    profile = coverage_profile(layout, max_f=4)
    print(
        render_table(
            ["simultaneous failures", "survivable fraction"],
            [[f, f"{p:.0%}"] for f, p in profile.items()],
        )
    )

    # Inject one failure per disk group while clients are reading.
    schedule = [
        FailureEvent(0.010, disk=1),
        FailureEvent(0.020, disk=6),
        FailureEvent(0.030, disk=8),
    ]
    injector = FaultInjector(cluster, schedule)
    injector.start()
    result = ParallelIOWorkload(
        cluster, clients=4, op="read", size=1 * MB
    ).run()
    print(
        f"\n3 failures injected mid-run (disks 1, 6, 8 — one per group)."
        f"\ndegraded parallel read: "
        f"{result.aggregate_bandwidth_mb_s:.2f} MB/s aggregate, "
        f"data loss: {injector.log.data_loss_at or 'none'}"
    )

    # Replace and rebuild each failed disk from surviving copies.
    for disk in (1, 6, 8):
        cluster.storage.repair_disk(disk)
        rebuild = execute_rebuild(cluster, disk, max_blocks=256)
        print(
            f"rebuilt disk {disk}: {rebuild.blocks_rebuilt} blocks in "
            f"{rebuild.elapsed:.2f}s ({rebuild.rate_mb_s:.1f} MB/s)"
        )

    # Analytical MTTDL comparison (500k-hour disks, 24 h repair).
    mttf, mttr = 500_000.0, 24.0
    rows = [
        ["RAID-10", mttdl_mirrored_pairs(12, mttf, mttr)],
        ["chained declustering", mttdl_chained(12, mttf, mttr)],
        ["RAID-x 4-wide groups", mttdl_raidx(12, mttf, mttr, 4)],
        ["RAID-x 12-wide", mttdl_raidx(12, mttf, mttr, 12)],
        ["RAID-5", mttdl_raid5(12, mttf, mttr)],
    ]
    print()
    print(
        render_table(
            ["architecture", "MTTDL (hours)"],
            [[n, f"{v:,.0f}"] for n, v in rows],
            title="Mean time to data loss, 12 disks",
        )
    )


if __name__ == "__main__":
    main()

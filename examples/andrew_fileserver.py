#!/usr/bin/env python3
"""Scenario: a shared file server for collaborative engineering work.

Runs the Andrew benchmark (the paper's Fig. 6) — directory creation,
small-file copies, scans, reads, and compiles — with many concurrent
clients on each storage architecture, over the full file-system stack
(inodes, directories, per-node caches with write-invalidate coherence).

    python examples/andrew_fileserver.py
"""

from repro.analysis.report import render_table
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.workloads.andrew import AndrewBenchmark, AndrewResult

ARCHS = ("nfs", "raid5", "raid10", "raidx")
CLIENTS = 16


def main() -> None:
    rows = []
    results = {}
    for arch in ARCHS:
        cluster = build_cluster(trojans_cluster(), architecture=arch)
        r = AndrewBenchmark(cluster, CLIENTS).run()
        results[arch] = r
        rows.append(
            [arch]
            + [round(r.phase_times[p], 2) for p in AndrewResult.PHASES]
            + [round(r.total, 2), f"{r.cache_hit_rate:.0%}"]
        )
    print(
        render_table(
            ["arch"] + list(AndrewResult.PHASES) + ["total", "cache"],
            rows,
            title=f"Andrew benchmark, {CLIENTS} concurrent clients",
        )
    )
    print()
    raidx, raid5 = results["raidx"].total, results["raid5"].total
    raid10 = results["raid10"].total
    print(
        f"RAID-x cuts total elapsed time by "
        f"{1 - raidx / raid5:.0%} vs RAID-5 and "
        f"{1 - raidx / raid10:.0%} vs RAID-10.\n"
        f"RAID-5 loses most of it in the Copy phase "
        f"({results['raid5'].phase_times['Copy']:.1f}s vs "
        f"{results['raidx'].phase_times['Copy']:.1f}s) — the benchmark's "
        f"files are small, and every small write costs RAID-5 a "
        f"read-modify-write."
    )


if __name__ == "__main__":
    main()

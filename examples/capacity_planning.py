#!/usr/bin/env python3
"""Scenario: capacity planning for a production RAID-x deployment.

Combines three of the library's analysis tools:

1. a **utilization timeline** sampled while a write burst runs (where
   is the bottleneck — disks, network, CPU?);
2. the **reliability model**, cross-checked by Monte-Carlo simulation
   (how wide may stripe groups be before MTTDL gets uncomfortable?);
3. **Young's checkpoint-interval planner** fed with a *measured*
   checkpoint cost from the simulator (how often should the application
   checkpoint, and what does that cost in overhead?).

    python examples/capacity_planning.py
"""

from repro.analysis.report import render_sparkline, render_table
from repro.checkpoint import CheckpointConfig, CheckpointRun, plan_interval
from repro.cluster.cluster import build_cluster
from repro.cluster.monitoring import ClusterMonitor
from repro.config import trojans_cluster
from repro.fault import mttdl_raidx, simulate_mttdl
from repro.raid import make_layout
from repro.units import KiB, MB
from repro.workloads.parallel_io import ParallelIOWorkload


def utilization_timeline() -> None:
    from repro.analysis.bottleneck import bottleneck, usage_table

    cluster = build_cluster(trojans_cluster(), architecture="raidx")
    monitor = ClusterMonitor(cluster, interval=0.02)
    monitor.start()
    r = ParallelIOWorkload(cluster, 12, op="write", size=2 * MB).run()
    monitor.stop()
    print(f"write burst: {r.aggregate_bandwidth_mb_s:.1f} MB/s aggregate")
    for metric in ("disk_utilization", "network_utilization",
                   "cpu_utilization"):
        series = monitor.log.series(metric)
        print(
            f"  {metric:20s} peak {monitor.log.peak(metric):5.0%}  "
            f"|{render_sparkline(series)}|"
        )
    hot = bottleneck(cluster)
    print(
        f"  utilization names '{hot.name}' (peak {hot.peak:.0%}) — but "
        f"see benchmark A11: sensitivity analysis shows the network is "
        f"the actual lever for this workload."
    )
    print(f"  full usage table: {usage_table(cluster)}")
    print()


def reliability_envelope() -> None:
    mttf, mttr = 500_000.0, 24.0
    rows = []
    for n, k in ((3, 4), (4, 3), (6, 2), (12, 1)):
        analytical = mttdl_raidx(12, mttf, mttr, stripe_width=n)
        layout = make_layout(
            "raidx", n_disks=12, block_size=1, disk_capacity=16,
            stripe_width=n,
        )
        # Monte-Carlo with compressed time scales to verify the model.
        sim = simulate_mttdl(layout, 1000.0, 10.0, runs=120)
        scaled = sim.mean_hours * (mttf / 1000.0) * (
            (mttf / mttr) / (1000.0 / 10.0)
        )
        rows.append(
            [f"{n}x{k}", f"{analytical:,.0f}", f"{scaled:,.0f}",
             layout.max_fault_coverage()]
        )
    print(
        render_table(
            ["geometry", "MTTDL model (h)", "MTTDL simulated (h)",
             "max coverage"],
            rows,
            title="Reliability envelope, 12 disks (500k h MTTF, 24 h "
            "repair)",
        )
    )
    print()


def checkpoint_cadence() -> None:
    cluster = build_cluster(trojans_cluster(), architecture="raidx")
    cfg = CheckpointConfig(
        processes=12, state_bytes=8 * MB, scheme="striped_staggered",
        stagger_groups=3,
    )
    result = CheckpointRun(cluster, cfg).run()
    plan = plan_interval(
        checkpoint_cost_s=result.total_time,
        mtbf_s=12 * 3600.0,  # one node failure every 12 h, say
        recovery_cost_s=0.5,
    )
    print(
        f"measured checkpoint epoch: {result.total_time:.2f} s "
        f"({result.aggregate_bandwidth_mb_s:.0f} MB/s)\n"
        f"Young's optimal interval : {plan.interval_s / 60:.1f} min\n"
        f"expected overhead        : {plan.overhead:.2%} of runtime"
    )


def main() -> None:
    utilization_timeline()
    reliability_envelope()
    checkpoint_cadence()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: fast checkpointing for a long-running cluster computation.

Section 6 of the paper applies RAID-x's parallel I/O to coordinated
checkpointing.  This script compares the three write schedules
(parallel, striped+staggered, fully staggered), shows the C/S
trade-off, and then recovers a process's state two ways: from its
*local* mirror image (transient failure — no network) and from the
striped data blocks (permanent failure, degraded read).

    python examples/checkpointing_demo.py
"""

from repro.analysis.report import render_table
from repro.checkpoint import CheckpointConfig, CheckpointRun, recover
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB

SCHEMES = (
    ("parallel", None),
    ("striped_staggered", 3),
    ("staggered", None),
)


def main() -> None:
    rows = []
    last_run = None
    for scheme, groups in SCHEMES:
        cluster = build_cluster(trojans_cluster(), architecture="raidx")
        cfg = CheckpointConfig(
            processes=12,
            state_bytes=4 * MB,
            scheme=scheme,
            stagger_groups=groups,
            local_images=True,
        )
        run = CheckpointRun(cluster, cfg)
        result = run.run()
        cluster.env.run(cluster.env.process(cluster.storage.drain()))
        writes = list(result.per_process_write.values())
        rows.append(
            [
                f"{scheme}" + (f"/{groups}" if groups else ""),
                round(result.total_time, 3),
                round(result.sync_overhead * 1e3, 2),
                round(sum(writes) / len(writes), 3),
                round(result.aggregate_bandwidth_mb_s, 1),
            ]
        )
        last_run = run
    print(
        render_table(
            ["schedule", "epoch_s", "sync_ms", "mean C per proc (s)",
             "agg MB/s"],
            rows,
            title="Coordinated checkpointing of 12 x 4 MB on RAID-x",
        )
    )
    print(
        "\nThe trade-off of Fig. 7: staggering stretches the epoch but\n"
        "shrinks each process's own checkpoint overhead C, because its\n"
        "stripe group writes without contention.\n"
    )

    transient = recover(last_run, process=5, kind="transient")
    permanent = recover(last_run, process=5, kind="permanent")
    print(
        f"recovery of process 5 ({transient.nbytes / 1e6:.0f} MB):\n"
        f"  transient (local mirror image) : "
        f"{transient.elapsed * 1e3:7.1f} ms "
        f"({transient.bandwidth_mb_s:.1f} MB/s, zero network)\n"
        f"  permanent (striped data blocks): "
        f"{permanent.elapsed * 1e3:7.1f} ms "
        f"({permanent.bandwidth_mb_s:.1f} MB/s)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trace the small-write path: RAID-x vs RAID-5, side by side.

Runs the same 4-client small-write workload against both architectures
under an active tracer, prints where each one spends its time (queue
wait, disk service, network, locks, background mirror flushes), walks
one request's span tree, and writes a combined Chrome/Perfetto trace:

    python examples/trace_write_path.py [out.json]

Open the output at https://ui.perfetto.dev — each architecture appears
as its own group of process rows (``raidx/node0`` vs ``raid5/node0``)
with disks, NICs, CPUs, and locks as swimlanes.  RAID-x's deferred
mirror flushes show up on the ``mirror`` track *after* the client
request completes; RAID-5's stripe lock waits show up on ``lock``.
"""

import sys

from repro import build_cluster, trojans_cluster
from repro.obs import runtime as obs
from repro.obs.export import write_chrome_trace
from repro.obs.trace import (
    DISK_QUEUE_WAIT,
    DISK_SERVICE,
    LOCK_WAIT,
    MIRROR_FLUSH,
    NET_RX,
    NET_TX,
    REQUEST,
)
from repro.units import KiB
from repro.workloads import ParallelIOWorkload

ARCHS = ("raidx", "raid5")
CLIENTS = 4
WRITE_KIB = 32


def run_traced(tracer) -> None:
    """Run the workload once per architecture under ``tracer``."""
    for arch in ARCHS:
        tracer.label = arch  # prefixes tracks + metric keys
        cluster = build_cluster(
            trojans_cluster(n=4, k=1), architecture=arch, locking=True
        )
        result = ParallelIOWorkload(
            cluster, clients=CLIENTS, op="write", size=WRITE_KIB * KiB,
            repeats=4, queue_depth=2,
        ).run()
        cluster.env.run(cluster.env.process(cluster.storage.drain()))
        print(
            f"{arch:8s} {result.aggregate_bandwidth_mb_s:7.2f} MB/s "
            f"aggregate ({CLIENTS} clients x 4 x {WRITE_KIB} KiB writes)"
        )
    tracer.label = ""


def time_breakdown(tracer) -> None:
    """Total span time per layer, per architecture."""
    kinds = (
        REQUEST, DISK_QUEUE_WAIT, DISK_SERVICE, NET_TX, NET_RX,
        LOCK_WAIT, MIRROR_FLUSH,
    )
    print(f"\n{'layer':18s}" + "".join(f"{a:>12s}" for a in ARCHS))
    for kind in kinds:
        row = f"{kind:18s}"
        for arch in ARCHS:
            total = sum(
                s.duration for s in tracer.by_kind(kind)
                if s.track.startswith(arch + "/")
            )
            row += f"{total * 1e3:10.2f}ms"
        print(row)


def one_request(tracer) -> None:
    """Walk a single RAID-5 request's span tree (one trace id)."""
    reqs = [
        s for s in tracer.by_kind(REQUEST)
        if s.track.startswith("raid5/") and s.trace is not None
    ]
    req = max(reqs, key=lambda s: s.duration)
    print(
        f"\nslowest raid5 request (trace #{req.trace}, "
        f"{req.duration * 1e3:.2f} ms):"
    )
    for s in sorted(tracer.by_trace(req.trace), key=lambda s: s.start):
        bar = "*" if s.kind == REQUEST else " "
        print(
            f" {bar} {s.start * 1e3:8.3f}ms +{s.duration * 1e3:7.3f}ms  "
            f"{s.kind:16s} {s.track}"
        )


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "trace_write_path.json"
    with obs.tracing() as tracer:
        run_traced(tracer)
        time_breakdown(tracer)
        one_request(tracer)
        flushes = tracer.by_kind(MIRROR_FLUSH)
        deferred = sum(1 for s in flushes if (s.args or {}).get("deferred"))
        print(
            f"\nraidx mirror flushes: {len(flushes)} "
            f"({deferred} deferred past request completion)"
        )
        write_chrome_trace(tracer.spans, out)
        print(f"wrote {len(tracer)} spans -> {out} (open in Perfetto)")
        print(tracer.metrics.render("Per-layer latency and counters"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a RAID-x cluster, move some data, inspect the OSM.

Runs in a couple of seconds:

    python examples/quickstart.py
"""

from repro import build_cluster, trojans_cluster
from repro.raid import make_layout
from repro.units import MB, fmt_time
from repro.workloads import ParallelIOWorkload


def main() -> None:
    # 1. The orthogonal striping and mirroring geometry (paper Fig. 1a).
    layout = make_layout(
        "raidx", n_disks=4, block_size=1, disk_capacity=8, stripe_width=4
    )
    print("RAID-x placement on 4 disks (B = data, M = clustered image):")
    print(layout.placement_map(12))
    print()

    # 2. A 12-node Trojans cluster with the RAID-x storage architecture.
    cluster = build_cluster(trojans_cluster(n=12, k=1), architecture="raidx")
    print(
        f"cluster: {cluster.n_nodes} nodes, {cluster.n_disks} disks, "
        f"single I/O space of "
        f"{cluster.storage.capacity / 1e9:.1f} GB"
    )

    # 3. Twelve barrier-synchronized clients each write a private 2 MB
    #    file (the paper's Fig.-5 methodology), then read it back.
    for op in ("write", "read"):
        result = ParallelIOWorkload(
            cluster, clients=12, op=op, size=2 * MB
        ).run()
        print(
            f"parallel {op:5s}: {result.aggregate_bandwidth_mb_s:6.2f} "
            f"MB/s aggregate over {fmt_time(result.elapsed)}"
        )

    # 4. Where did the time go?
    stats = cluster.stats()
    print(
        f"disk utilization {stats['disk_utilization']:.0%}, "
        f"network utilization {stats['network_utilization']:.0%}, "
        f"{stats['messages']['messages']} protocol messages "
        f"({stats['messages']['remote_block_ops']} remote block ops)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Scenario: sizing storage for an I/O-centric cluster application.

The paper's intro motivates RAID-x with data-mining / multimedia-style
workloads that hammer parallel I/O.  This script sweeps client counts
over all four storage architectures and prints the Fig.-5-style scaling
tables plus improvement factors, so you can see where each architecture
saturates.

    python examples/parallel_io_scaling.py
"""

from repro.analysis.report import render_series
from repro.analysis.scalability import improvement_factor, scaling_efficiency
from repro.cluster.cluster import build_cluster
from repro.config import trojans_cluster
from repro.units import MB
from repro.workloads.parallel_io import ParallelIOWorkload

ARCHS = ("nfs", "raid5", "raid10", "raidx")
CLIENTS = (1, 2, 4, 8, 12)


def measure(arch: str, clients: int, op: str) -> float:
    cluster = build_cluster(trojans_cluster(), architecture=arch)
    wl = ParallelIOWorkload(cluster, clients, op=op, size=2 * MB)
    return wl.run().aggregate_bandwidth_mb_s


def main() -> None:
    for op in ("read", "write"):
        series = {
            arch: [measure(arch, c, op) for c in CLIENTS]
            for arch in ARCHS
        }
        print(
            render_series(
                "clients",
                list(CLIENTS),
                series,
                title=f"Aggregate large-{op} bandwidth (MB/s)",
            )
        )
        print()
        for arch in ARCHS:
            s = series[arch]
            imp = improvement_factor(s[0], s[-1])
            eff = scaling_efficiency(list(CLIENTS), s)[-1]
            print(
                f"  {arch:7s} {CLIENTS[-1]}-client improvement "
                f"{imp:4.1f}x (scaling efficiency {eff:.0%})"
            )
        print()

    print(
        "Reading the tables: the serverless architectures scale with\n"
        "clients until the fabric/disks saturate, while NFS flattens at\n"
        "one server's capacity.  RAID-x tracks RAID-0-class write\n"
        "bandwidth because image updates run in the background."
    )


if __name__ == "__main__":
    main()
